"""Tests for ε-approximate agreement and the depth crossover (E14)."""

from fractions import Fraction

import pytest

from repro.core import full_affine_task
from repro.tasks.approximate_agreement import (
    approximate_agreement_outputs,
    approximate_agreement_task,
    grid_points,
    realization_map,
    realized_coordinate,
    solvable_at_depth,
)
from repro.tasks.solvability import verify_carried_map
from repro.tasks.task import OutputVertex
from repro.topology.chromatic import ChrVertex


def test_grid_points():
    grid = grid_points(1)
    assert grid == [Fraction(0), Fraction(1, 3), Fraction(2, 3), Fraction(1)]


def test_solo_participant_outputs_own_input():
    outputs = approximate_agreement_outputs(
        frozenset({1}), Fraction(1, 3), 1
    )
    assert outputs == frozenset(
        {frozenset({OutputVertex(1, Fraction(1))})}
    )


def test_pairs_respect_epsilon():
    outputs = approximate_agreement_outputs(
        frozenset({0, 1}), Fraction(1, 3), 1
    )
    for sigma in outputs:
        if len(sigma) == 2:
            a, b = sorted(vertex.value for vertex in sigma)
            assert b - a <= Fraction(1, 3)


def test_task_validates():
    approximate_agreement_task(1).validate()
    approximate_agreement_task(2).validate()


def test_rejects_negative_precision():
    with pytest.raises(ValueError):
        approximate_agreement_task(-1)


def test_realized_coordinates_of_chr_edge():
    v0 = ChrVertex(0, frozenset({0, 1}))
    v1 = ChrVertex(1, frozenset({0, 1}))
    assert realized_coordinate(v0) == Fraction(2, 3)
    assert realized_coordinate(v1) == Fraction(1, 3)
    assert realized_coordinate(ChrVertex(0, frozenset({0}))) == 0
    assert realized_coordinate(1) == 1


def test_realization_map_is_carried():
    for depth in (1, 2):
        task = approximate_agreement_task(depth)
        affine = full_affine_task(2, depth)
        assert verify_carried_map(affine, task, realization_map(depth))


def test_facet_diameter_is_exactly_grid_step():
    affine = full_affine_task(2, 2)
    for facet in affine.complex.facets:
        coords = sorted(realized_coordinate(v) for v in facet)
        assert coords[1] - coords[0] == Fraction(1, 9)


@pytest.mark.parametrize("precision", [1, 2, 3])
def test_crossover_at_diagonal(precision):
    assert solvable_at_depth(precision, precision)


@pytest.mark.parametrize("precision,depth", [(2, 1), (3, 1), (3, 2)])
def test_unsolvable_below_diagonal(precision, depth):
    assert not solvable_at_depth(precision, depth)


@pytest.mark.parametrize("precision,depth", [(1, 2), (1, 3), (2, 3)])
def test_solvable_above_diagonal(precision, depth):
    assert solvable_at_depth(precision, depth)


def test_monotone_in_epsilon_at_fixed_depth():
    """Coarser agreement is never harder."""
    assert solvable_at_depth(1, 1)
    assert not solvable_at_depth(2, 1)

"""Unit tests for the concurrency map (Definition 8, Figure 6)."""


from repro.core.concurrency import (
    concurrency_census,
    concurrency_level,
    concurrency_map,
)
from repro.core.critical import CriticalStructure
from repro.topology.chromatic import ChrVertex


def test_figure6a_census(chr1, alpha_1of):
    """Figure 6a: 1-obstruction-freedom has levels 0 and 1 only."""
    census = concurrency_census(chr1, alpha_1of)
    assert set(census) == {0, 1}
    assert census == {0: 18, 1: 31}


def test_figure6b_census(chr1, alpha_fig5b):
    """Figure 6b: the running example reaches level 2."""
    census = concurrency_census(chr1, alpha_fig5b)
    assert set(census) == {0, 1, 2}
    assert census == {0: 4, 1: 14, 2: 31}


def test_level_zero_without_critical_simplices(alpha_1res):
    sigma = frozenset({ChrVertex(0, frozenset({0}))})
    # alpha({0}) = 0: the solo vertex witnesses nothing.
    assert concurrency_level(sigma, alpha_1res) == 0


def test_level_tracks_critical_carrier_power(alpha_1res):
    pair = frozenset(
        {
            ChrVertex(0, frozenset({0, 1})),
            ChrVertex(1, frozenset({0, 1})),
        }
    )
    assert concurrency_level(pair, alpha_1res) == 1


def test_level_monotone_under_inclusion(chr1, alpha_fig5b):
    """More of the run seen => at least the same concurrency level."""
    mapping = concurrency_map(chr1, alpha_fig5b)
    simplices = sorted(mapping, key=len)
    for small in simplices:
        for big in simplices:
            if small < big:
                assert mapping[small] <= mapping[big]


def test_level_bounded_by_alpha_of_carrier(chr1, alpha_fig5b):
    from repro.topology.subdivision import carrier

    mapping = concurrency_map(chr1, alpha_fig5b)
    for sigma, level in mapping.items():
        assert level <= alpha_fig5b(carrier(sigma))


def test_census_counts_all_simplices(chr1, alpha_1of):
    census = concurrency_census(chr1, alpha_1of)
    assert sum(census.values()) == len(chr1.simplices)


def test_shared_structure_consistency(chr1, alpha_1of):
    structure = CriticalStructure(alpha_1of)
    for sigma in list(chr1.simplices)[:20]:
        assert concurrency_level(
            sigma, alpha_1of, structure
        ) == concurrency_level(sigma, alpha_1of)


def test_wait_free_levels_equal_view_power(chr1, alpha_wf):
    """With everything critical, Conc equals alpha of the largest
    shared-carrier group's carrier."""
    census = concurrency_census(chr1, alpha_wf)
    assert 0 not in census
    assert max(census) == 3

"""Tests for the executable lemmas/identities (Section 5, E9)."""

import pytest

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
    wait_free_alpha,
)
from repro.core.critical import CriticalStructure
from repro.core.theorems import (
    check_corollary4,
    check_critical_distribution,
    check_critical_view_uniqueness,
    critical_hitting_number,
    family_hitting_number,
    full_participation_simplices,
    guard_variant_report,
    ra_equals_rkof,
    ra_equals_rtres,
)

ALPHAS = [
    ("1-OF", k_concurrency_alpha(3, 1)),
    ("2-OF", k_concurrency_alpha(3, 2)),
    ("1-res", t_resilience_alpha(3, 1)),
    ("wait-free", wait_free_alpha(3)),
]


def test_family_hitting_number():
    assert family_hitting_number([]) == 0
    assert family_hitting_number([{0, 1}, {1, 2}]) == 1
    assert family_hitting_number([{0}, {1}]) == 2


def test_critical_hitting_number_levels(alpha_1res, chr1):
    facet = next(
        f
        for f in chr1.facets
        if all(v.carrier == frozenset({0, 1, 2}) for v in f)
    )
    # Synchronous facet under 1-resilience: power 2 at level 1.
    assert critical_hitting_number(facet, alpha_1res, 1) >= 2


@pytest.mark.parametrize("name,alpha", ALPHAS)
def test_lemma3_distribution(name, alpha):
    for sigma in full_participation_simplices(3):
        assert check_critical_distribution(sigma, alpha), (name, sigma)


def test_lemma3_rejects_wrong_hypothesis(alpha_wf, chr1):
    from repro.topology.chromatic import chi
    from repro.topology.subdivision import carrier

    partial = next(
        frozenset(s)
        for s in chr1.simplices
        if chi(frozenset(s)) != carrier(frozenset(s))
    )
    with pytest.raises(ValueError):
        check_critical_distribution(partial, alpha_wf)


@pytest.mark.parametrize("name,alpha", ALPHAS)
def test_corollary4_all_simplices(name, alpha, chr1):
    structure = CriticalStructure(alpha)
    for sigma in chr1.simplices:
        assert check_corollary4(frozenset(sigma), alpha, structure), name


@pytest.mark.parametrize("name,alpha", ALPHAS)
def test_lemma11_view_uniqueness(name, alpha, chr1):
    structure = CriticalStructure(alpha)
    for sigma in chr1.simplices:
        assert check_critical_view_uniqueness(
            frozenset(sigma), alpha, structure
        ), name


def test_fig5b_lemmas():
    alpha = agreement_function_of(figure5b_adversary())
    for sigma in full_participation_simplices(3):
        assert check_critical_distribution(sigma, alpha)


# ------------------------------------------------------------------ E9
def test_union_variant_matches_rtres_all_t():
    for t in range(0, 3):
        assert ra_equals_rtres(3, t, "union")


def test_union_variant_matches_rkof_extremes():
    assert ra_equals_rkof(3, 1, "union")
    assert ra_equals_rkof(3, 3, "union")


def test_known_finding_k2_strict_subcomplex():
    """Documented finding: Definition 9 is strictly finer than
    Definition 6 at k=2, n=3 (142 vs 163 facets)."""
    assert not ra_equals_rkof(3, 2, "union")
    from repro.core.ra import r_affine
    from repro.core.rkof import r_k_obstruction_free

    ra = r_affine(k_concurrency_alpha(3, 2), "union")
    rk = r_k_obstruction_free(3, 2)
    assert ra.complex.complex.is_sub_complex_of(rk.complex.complex)
    assert len(ra.complex.facets) == 142
    assert len(rk.complex.facets) == 163


def test_intersection_variant_fails_literature():
    assert not ra_equals_rkof(3, 1, "intersection")
    assert not ra_equals_rtres(3, 0, "intersection")


def test_guard_variant_report_shape():
    report = guard_variant_report(3)
    assert set(report) == {"intersection", "union"}
    union_wins = sum(report["union"].values())
    inter_wins = sum(report["intersection"].values())
    assert union_wins > inter_wins


@pytest.mark.slow
def test_union_variant_matches_rtres_n4():
    """n=4 confirmation of the E9 verdict: R_A = R_{1-res} exactly."""
    assert ra_equals_rtres(4, 1, "union")


@pytest.mark.slow
def test_rkof_relationship_n4():
    """n=4 refinement of the k=2 finding: the two definitions become
    incomparable (neither contains the other) at k=2, and Definition 9
    is a strict sub-complex at k=3."""
    from repro.core.ra import r_affine
    from repro.core.rkof import r_k_obstruction_free

    ra2 = r_affine(k_concurrency_alpha(4, 2), "union")
    rk2 = r_k_obstruction_free(4, 2)
    assert not ra2.complex.complex.is_sub_complex_of(rk2.complex.complex)
    assert not rk2.complex.complex.is_sub_complex_of(ra2.complex.complex)

    ra3 = r_affine(k_concurrency_alpha(4, 3), "union")
    rk3 = r_k_obstruction_free(4, 3)
    assert ra3.complex.complex.is_sub_complex_of(rk3.complex.complex)
    assert ra3.complex != rk3.complex

    assert ra_equals_rkof(4, 1, "union")
    assert ra_equals_rkof(4, 4, "union")

"""Unit tests for repro.topology.subdivision (Chr and carriers)."""

import pytest

from repro.topology.chromatic import ChrVertex, chi, standard_simplex
from repro.topology.enumeration import fubini_number
from repro.topology.subdivision import (
    carrier,
    carrier_in_s,
    chr_complex,
    chromatic_subdivision,
    iterated_subdivision,
    own_vertex_in_carrier,
    subdivide_simplex,
    subdivision_restricted_to,
)


def test_chr_s3_census(chr1):
    # Figure 1a: 12 vertices, 13 facets for three processes.
    assert len(chr1.vertices) == 12
    assert len(chr1.facets) == 13
    assert chr1.f_vector() == [12, 24, 13]


def test_chr2_s3_census(chr2):
    assert len(chr2.facets) == 13 * 13
    assert chr2.is_pure(2)


@pytest.mark.parametrize("n", [1, 2, 3, 4])
def test_chr_facet_count_is_fubini(n):
    K = chr_complex(n, 1)
    assert len(K.facets) == fubini_number(n)


def test_chr_is_chromatic(chr1):
    assert chr1.colors() == frozenset({0, 1, 2})
    for facet in chr1.facets:
        assert len(chi(facet)) == 3


def test_subdivide_single_simplex():
    facets = subdivide_simplex(frozenset({0, 1}))
    assert len(facets) == 3  # Fubini(2)


def test_boundary_agreement():
    """Chr of a complex glues consistently: subdividing two triangles
    sharing an edge yields a complex whose shared-edge subdivision has
    exactly the vertices of Chr(edge)."""
    from repro.topology.chromatic import ChromaticComplex

    K = ChromaticComplex([{0, 1, 2}, {1, 2, 3}])
    sub = chromatic_subdivision(K)
    edge_vertices = {
        v for v in sub.vertices if v.carrier <= frozenset({1, 2})
    }
    # Chr of an edge: 2 endpoints + 2 interior vertices.
    assert len(edge_vertices) == 4


def test_iterated_subdivision_zero_is_identity(s3):
    assert iterated_subdivision(s3, 0) == s3


def test_iterated_subdivision_rejects_negative(s3):
    with pytest.raises(ValueError):
        iterated_subdivision(s3, -1)


def test_chr_complex_cached():
    assert chr_complex(3, 1) is chr_complex(3, 1)


def test_carrier_of_chr1_facet(chr1):
    for facet in chr1.facets:
        assert carrier(facet) == frozenset({0, 1, 2})


def test_carrier_in_s_of_chr2(chr2):
    for facet in chr2.facets:
        assert carrier_in_s(facet) == frozenset({0, 1, 2})


def test_carrier_in_s_of_boundary_vertices(chr2):
    sizes = {len(carrier_in_s([v])) for v in chr2.vertices}
    assert sizes == {1, 2, 3}


def test_carrier_rejects_base_vertices():
    with pytest.raises(TypeError):
        carrier([0, 1])


def test_own_vertex_in_carrier(chr2):
    for v in chr2.vertices:
        own = own_vertex_in_carrier(v)
        assert own.color == v.color
        assert own in v.carrier


def test_own_vertex_missing_raises():
    orphan = ChrVertex(5, frozenset({ChrVertex(0, frozenset({0}))}))
    with pytest.raises(ValueError):
        own_vertex_in_carrier(orphan)


def test_subdivision_restricted_to_face(chr1):
    edge = subdivision_restricted_to(chr1, {0, 1})
    # Chr of an edge: 3 facets (Fubini(2)).
    assert len(edge.facets) == 3
    assert all(carrier_in_s(f) <= frozenset({0, 1}) for f in edge.facets)


def test_subdivision_restricted_to_vertex(chr1):
    corner = subdivision_restricted_to(chr1, {2})
    assert len(corner.facets) == 1
    (facet,) = corner.facets
    (vertex,) = facet
    assert vertex == ChrVertex(2, frozenset({2}))


def test_chr2_vertices_nest(chr2):
    for v in chr2.vertices:
        assert all(isinstance(w, ChrVertex) for w in v.carrier)
        for w in v.carrier:
            assert all(isinstance(x, int) for x in w.carrier)


@pytest.mark.slow
def test_chr3_structure():
    """Third subdivision at n=3: 13³ facets, still pure, contractible,
    volumes still tile the simplex."""
    from repro.topology.connectivity import betti_numbers
    from repro.topology.geometry import subdivision_volume_check
    from repro.topology.subdivision import iterated_subdivision
    from repro.topology.chromatic import standard_simplex

    chr3 = iterated_subdivision(standard_simplex(3), 3)
    assert len(chr3.facets) == 13**3
    assert chr3.is_pure(2)
    assert subdivision_volume_check(chr3, 3)
    assert betti_numbers(chr3.complex) == [1, 0, 0]

"""Unit and property tests for repro.topology.enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.enumeration import (
    chr_facet_to_partition,
    fubini_number,
    is_valid_is_views,
    ordered_set_partitions,
    partition_to_chr_facet,
    views_of_partition,
)


def test_fubini_sequence():
    assert [fubini_number(k) for k in range(7)] == [
        1, 1, 3, 13, 75, 541, 4683,
    ]


def test_fubini_rejects_negative():
    with pytest.raises(ValueError):
        fubini_number(-1)


@pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
def test_partition_count_matches_fubini(n):
    partitions = list(ordered_set_partitions(range(n)))
    assert len(partitions) == fubini_number(n)


def test_partitions_are_partitions():
    for partition in ordered_set_partitions(range(3)):
        flattened = [x for block in partition for x in block]
        assert sorted(flattened) == [0, 1, 2]
        assert all(block for block in partition)


def test_views_of_ordered_run():
    # The run {1}, {0}, {2} of Figure 3a (renamed p1->0, p2->1, p3->2).
    partition = (frozenset({1}), frozenset({0}), frozenset({2}))
    views = views_of_partition(partition)
    assert views[1] == frozenset({1})
    assert views[0] == frozenset({0, 1})
    assert views[2] == frozenset({0, 1, 2})


def test_views_of_synchronous_run():
    partition = (frozenset({0, 1, 2}),)
    views = views_of_partition(partition)
    assert all(view == frozenset({0, 1, 2}) for view in views.values())


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None)
def test_all_partition_views_satisfy_is_properties(n):
    for partition in ordered_set_partitions(range(n)):
        assert is_valid_is_views(views_of_partition(partition))


def test_is_valid_views_rejects_violations():
    # Containment violated.
    assert not is_valid_is_views(
        {0: frozenset({0}), 1: frozenset({1})}
    )
    # Self-inclusion violated.
    assert not is_valid_is_views({0: frozenset({1}), 1: frozenset({0, 1})})
    # Immediacy violated: 0 in view(1) but view(0) not within view(1).
    assert not is_valid_is_views(
        {
            0: frozenset({0, 1, 2}),
            1: frozenset({0, 1}),
            2: frozenset({0, 1, 2}),
        }
    )


def test_partition_facet_roundtrip():
    for partition in ordered_set_partitions(range(3)):
        facet = partition_to_chr_facet(partition)
        assert chr_facet_to_partition(facet) == partition


def test_facet_vertices_carry_views():
    partition = (frozenset({1}), frozenset({0, 2}))
    facet = partition_to_chr_facet(partition)
    by_color = {v.color: v for v in facet}
    assert by_color[1].carrier == frozenset({1})
    assert by_color[0].carrier == frozenset({0, 1, 2})
    assert by_color[2].carrier == frozenset({0, 1, 2})


def test_facet_to_partition_rejects_non_chains():
    from repro.topology.chromatic import ChrVertex

    bad = frozenset(
        {
            ChrVertex(0, frozenset({0})),
            ChrVertex(1, frozenset({1})),
        }
    )
    with pytest.raises(ValueError):
        chr_facet_to_partition(bad)

"""Tests for safe agreement (the BG building block)."""

import pytest

from repro.protocols.safe_agreement import (
    fuzz_safe_agreement,
    run_safe_agreement,
)
from repro.runtime.scheduler import LivenessViolation


def test_unanimous():
    outputs = run_safe_agreement({0: "v", 1: "v", 2: "v"}, seed=1)
    assert set(outputs.values()) == {"v"}


def test_agreement_under_contention():
    for seed in range(30):
        outputs = run_safe_agreement(
            {0: "a", 1: "b", 2: "c"}, seed=seed
        )
        assert len(set(outputs.values())) == 1


def test_validity():
    outputs = run_safe_agreement({0: "x", 1: "y"}, seed=3)
    assert set(outputs.values()) <= {"x", "y"}


@pytest.mark.parametrize("n", [2, 3, 4])
def test_fuzz_crash_free(n):
    fuzz_safe_agreement(n, runs=30, seed=n)


def test_crash_in_unsafe_window_blocks():
    """The defining weakness: a proposer crashing at level 1 blocks all
    readers — exactly why BG simulation sacrifices one simulator per
    stuck agreement."""
    with pytest.raises(LivenessViolation):
        run_safe_agreement(
            {0: "a", 1: "b", 2: "c"},
            seed=7,
            crash_in_window=1,
            max_steps=2_000,
        )


def test_crash_after_resolution_is_harmless():
    """Crashing after the level is resolved (two steps = write + scan
    happen earlier; here we let process 1 finish proposing first)."""
    # Crash-free baseline with only two deciders expected when pid 1
    # completes its propose phase before the crash point... covered by
    # the window test above; here assert the crash-free run decides.
    outputs = run_safe_agreement({0: "a", 1: "b"}, seed=11)
    assert set(outputs) == {0, 1}

"""Tests for general tasks with input complexes (E17)."""

import pytest

from repro.adversaries import k_concurrency_alpha
from repro.core import full_affine_task, r_affine, r_t_resilient
from repro.tasks.general_task import (
    GeneralMapSearch,
    InputVertex,
    base_inputs,
    base_inputs_of_simplex,
    binary_consensus_task,
    binary_input_complex,
    binary_k_set_consensus_task,
    general_task_solvable,
    input_complex_from_assignments,
    subdivide_input_complex,
)
from repro.tasks.solvability import SearchBudgetExceeded


def test_binary_input_complex_shape():
    inputs = binary_input_complex(3)
    assert len(inputs.facets) == 8
    assert len(inputs.vertices) == 6
    assert inputs.is_pure(2)


def test_input_complex_from_menus():
    inputs = input_complex_from_assignments(
        2, {0: ["a"], 1: ["x", "y", "z"]}
    )
    assert len(inputs.facets) == 3


def test_input_vertex_color():
    from repro.topology.chromatic import color_of

    assert color_of(InputVertex(2, 0)) == 2


def test_subdivided_input_complex_glues():
    """Two input facets sharing a face share the subdivision of that
    face: vertices carried entirely by the shared inputs coincide."""
    affine = full_affine_task(2, 1)
    inputs = binary_input_complex(2)
    domain = subdivide_input_complex(affine, inputs)
    # 4 input facets x 3 Chr-edge facets.
    assert len(domain.facets) == 12
    # Corner vertices (carried by one input vertex) are shared between
    # the two input facets containing that input vertex, so there are
    # exactly 4 of them, not 8.
    corners = [
        v for v in domain.vertices if len(base_inputs(v)) == 1
    ]
    assert len(corners) == 4


def test_base_inputs_of_simplex():
    affine = full_affine_task(2, 1)
    inputs = binary_input_complex(2)
    domain = subdivide_input_complex(affine, inputs)
    for facet in domain.facets:
        witnessed = base_inputs_of_simplex(facet)
        assert len({v.process for v in witnessed}) == 2


def test_flp_binary_consensus_unsolvable_wait_free():
    """FLP at depth 1, decided by exhaustive search."""
    task = binary_consensus_task(3)
    assert not general_task_solvable(full_affine_task(3, 1), task)


def test_flp_two_processes_depth2():
    task = binary_consensus_task(2)
    assert not general_task_solvable(full_affine_task(2, 2), task)


def test_binary_consensus_solvable_one_obstruction_free():
    task = binary_consensus_task(3)
    affine = r_affine(k_concurrency_alpha(3, 1))
    assert general_task_solvable(affine, task)


def test_binary_consensus_unsolvable_one_resilient():
    task = binary_consensus_task(3)
    assert not general_task_solvable(r_t_resilient(3, 1), task)


def test_binary_2set_consensus_solvable_one_resilient():
    task = binary_k_set_consensus_task(3, 2)
    assert general_task_solvable(r_t_resilient(3, 1), task)


def test_found_map_respects_validity():
    task = binary_consensus_task(3)
    affine = r_affine(k_concurrency_alpha(3, 1))
    search = GeneralMapSearch(affine, task)
    mapping = search.search()
    assert mapping is not None
    for vertex, out in mapping.items():
        assert out.process == vertex.color
        witnessed_values = {v.value for v in base_inputs(vertex)}
        assert out.value in witnessed_values


def test_budget_exceeded():
    task = binary_consensus_task(3)
    search = GeneralMapSearch(full_affine_task(3, 1), task)
    with pytest.raises(SearchBudgetExceeded):
        search.search(node_budget=2)


def test_binary_3set_consensus_trivially_solvable():
    task = binary_k_set_consensus_task(3, 3)
    assert general_task_solvable(full_affine_task(3, 1), task)

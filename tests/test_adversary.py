"""Unit tests for repro.adversaries.adversary."""

import pytest

from repro.adversaries.adversary import (
    Adversary,
    from_live_sets,
    k_obstruction_free,
    symmetric_from_sizes,
    t_resilient,
    wait_free,
)


def test_rejects_empty_live_set():
    with pytest.raises(ValueError):
        Adversary(3, [set()])


def test_rejects_out_of_range_processes():
    with pytest.raises(ValueError):
        Adversary(3, [{3}])


def test_rejects_zero_processes():
    with pytest.raises(ValueError):
        Adversary(0, [])


def test_membership_and_len():
    a = Adversary(3, [{0, 1}, {2}])
    assert {0, 1} in a
    assert {1} not in a
    assert len(a) == 2


def test_equality_hash():
    assert Adversary(3, [{0}, {1}]) == Adversary(3, [{1}, {0}])
    assert hash(Adversary(3, [{0}])) == hash(Adversary(3, [{0}]))


def test_wait_free_counts():
    assert len(wait_free(3)) == 7
    assert len(wait_free(4)) == 15


def test_t_resilient_live_sets():
    a = t_resilient(4, 1)
    assert all(len(live) >= 3 for live in a)
    assert len(a) == 4 + 1


def test_t_resilient_bounds():
    with pytest.raises(ValueError):
        t_resilient(3, 3)
    with pytest.raises(ValueError):
        t_resilient(3, -1)


def test_k_obstruction_free_live_sets():
    a = k_obstruction_free(4, 2)
    assert all(1 <= len(live) <= 2 for live in a)
    assert len(a) == 4 + 6


def test_k_obstruction_free_bounds():
    with pytest.raises(ValueError):
        k_obstruction_free(3, 0)
    with pytest.raises(ValueError):
        k_obstruction_free(3, 4)


def test_restrict():
    a = t_resilient(3, 1)
    restricted = a.restrict({0, 1})
    assert restricted.live_sets == frozenset({frozenset({0, 1})})


def test_restrict_intersecting():
    a = from_live_sets(3, [{0, 1}, {2}])
    restricted = a.restrict_intersecting({0, 1, 2}, {2})
    assert restricted.live_sets == frozenset({frozenset({2})})
    empty = a.restrict_intersecting({0, 2}, {0})
    assert empty.is_empty()


def test_is_superset_closed():
    assert t_resilient(3, 1).is_superset_closed()
    assert not k_obstruction_free(3, 1).is_superset_closed()
    assert wait_free(3).is_superset_closed()


def test_is_symmetric():
    assert t_resilient(3, 1).is_symmetric()
    assert k_obstruction_free(3, 2).is_symmetric()
    assert not from_live_sets(3, [{0}]).is_symmetric()


def test_superset_closure():
    a = from_live_sets(3, [{1}]).superset_closure()
    assert a.is_superset_closed()
    assert {1} in a and {0, 1} in a and {1, 2} in a and {0, 1, 2} in a
    assert {0} not in a


def test_symmetric_closure():
    a = from_live_sets(3, [{1}]).symmetric_closure()
    assert a.is_symmetric()
    assert len(a) == 3


def test_symmetric_from_sizes():
    a = symmetric_from_sizes(3, [1, 3])
    assert a.live_sizes() == frozenset({1, 3})
    assert len(a) == 4
    with pytest.raises(ValueError):
        symmetric_from_sizes(3, [0])


def test_live_sizes():
    assert t_resilient(3, 1).live_sizes() == frozenset({2, 3})


def test_processes_property():
    assert wait_free(3).processes == frozenset({0, 1, 2})

"""Unit tests for repro.topology.connectivity."""

import pytest

from repro.topology.complex import SimplicialComplex
from repro.topology.connectivity import (
    betti_numbers,
    boundary_matrix,
    connected_components,
    euler_characteristic,
    homology_summary,
    is_connected,
    is_link_connected,
    one_skeleton_graph,
)


@pytest.fixture
def hollow_triangle():
    return SimplicialComplex([{0, 1}, {1, 2}, {0, 2}])


@pytest.fixture
def two_components():
    return SimplicialComplex([{0, 1}, {2, 3}])


def test_one_skeleton(hollow_triangle):
    graph = one_skeleton_graph(hollow_triangle)
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 3


def test_is_connected(hollow_triangle, two_components):
    assert is_connected(hollow_triangle)
    assert not is_connected(two_components)
    assert is_connected(SimplicialComplex([]))


def test_connected_components(two_components):
    assert connected_components(two_components) == 2
    assert connected_components(SimplicialComplex([])) == 0


def test_euler_characteristic():
    disk = SimplicialComplex([{0, 1, 2}])
    assert euler_characteristic(disk) == 1
    circle = SimplicialComplex([{0, 1}, {1, 2}, {0, 2}])
    assert euler_characteristic(circle) == 0


def test_boundary_matrix_shape(hollow_triangle):
    d1 = boundary_matrix(hollow_triangle, 1)
    assert d1.shape == (3, 3)
    # Every edge has two endpoints.
    assert (d1.sum(axis=0) == 2).all()


def test_betti_disk():
    disk = SimplicialComplex([{0, 1, 2}])
    assert betti_numbers(disk) == [1, 0, 0]


def test_betti_circle(hollow_triangle):
    assert betti_numbers(hollow_triangle) == [1, 1]


def test_betti_two_components(two_components):
    assert betti_numbers(two_components) == [2, 0]


def test_betti_sphere():
    # Boundary of a tetrahedron: S^2 has b = [1, 0, 1].
    from itertools import combinations

    sphere = SimplicialComplex(
        [frozenset(c) for c in combinations(range(4), 3)]
    )
    assert betti_numbers(sphere) == [1, 0, 1]


def test_chr_subdivisions_contractible(chr1, chr2):
    assert betti_numbers(chr1.complex) == [1, 0, 0]
    assert betti_numbers(chr2.complex) == [1, 0, 0]
    assert euler_characteristic(chr2.complex) == 1


def test_link_connectivity_flags_pinch_point():
    # Two triangles sharing exactly one vertex: the link of that vertex
    # is disconnected.
    pinched = SimplicialComplex([{0, 1, 2}, {0, 3, 4}])
    assert not is_link_connected(pinched)


def test_link_connectivity_of_subdivision(chr1):
    assert is_link_connected(chr1.complex)


def test_r1of_not_link_connected(rkof_1):
    """The paper's Section 8 remark: R_{1-OF} is not link-connected."""
    assert not is_link_connected(rkof_1.complex.complex)


def test_rtres_link_connected(rtres_1):
    """While R_{1-res} is (Saraph et al. rely on this)."""
    assert is_link_connected(rtres_1.complex.complex)


def test_homology_summary_keys(hollow_triangle):
    summary = homology_summary(hollow_triangle)
    assert summary["euler_characteristic"] == 0
    assert summary["betti_gf2"] == [1, 1]
    assert summary["connected"]

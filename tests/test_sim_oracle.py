"""Tests for the differential oracle, its grid, and engine/CLI wiring."""

import json

import pytest

from repro.adversaries.catalogue import catalogue_by_name
from repro.engine import Engine, JobSpec
from repro.sim import (
    STANDARD_GRID,
    grid_case,
    load_artifact,
    oracle_params,
    replay,
    simulate_params,
    standard_grid,
    write_artifact,
)
from repro.sim import oracle as oracle_module


# ----------------------------------------------------------------------
# Reports and determinism
# ----------------------------------------------------------------------
def test_simulate_params_report_shape():
    adversary = catalogue_by_name(3)["1-resilient"]
    report = simulate_params(
        "hitting-set-consensus", adversary, 3, 0, 2, 2, seed=5
    )
    assert report["protocol"] == "hitting-set-consensus"
    assert report["n"] == 3 and report["t"] == 0 and report["k"] == 2
    assert report["schedules"] > report["plans"] > 0
    assert report["pass"] is True
    assert report["first_violation"] is None


def test_simulate_params_is_deterministic():
    adversary = catalogue_by_name(3)["figure-5b"]
    first = simulate_params(
        "hitting-set-consensus", adversary, 3, 0, 1, 3, seed=11
    )
    second = simulate_params(
        "hitting-set-consensus", adversary, 3, 0, 1, 3, seed=11
    )
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_oracle_params_crash_side_agrees_both_ways():
    adversary = catalogue_by_name(3)["1-resilient"]
    solvable = oracle_params(
        "hitting-set-consensus", adversary, 3, 0, 2, 2, seed=5
    )
    assert solvable["reference"] == {"method": "fact", "solvable": True}
    assert solvable["agree"] and solvable["artifact"] is None
    unsolvable = oracle_params(
        "hitting-set-consensus", adversary, 3, 0, 1, 2, seed=5
    )
    assert unsolvable["reference"]["solvable"] is False
    assert not unsolvable["sim"]["pass"]
    assert unsolvable["agree"]


def test_oracle_params_byzantine_side_uses_the_regime():
    report = oracle_params("bosco-weak-agreement", None, 4, 1, 1, 2, seed=5)
    assert report["reference"] == {"method": "regime", "solvable": True}
    assert report["agree"]


# ----------------------------------------------------------------------
# The committed grid
# ----------------------------------------------------------------------
def test_standard_grid_spans_both_regimes():
    grid = standard_grid()
    assert len(grid) >= 12
    crash = [case for case in grid if case.protocol == "hitting-set-consensus"]
    byzantine = [case for case in grid if case.t > 0]
    assert len(crash) >= 4 and len(byzantine) >= 4
    # Both sides of the t < n/3 bound are represented.
    assert any(case.n > 3 * case.t for case in byzantine)
    assert any(case.n <= 3 * case.t for case in byzantine)
    names = [case.name for case in grid]
    assert len(names) == len(set(names))
    assert tuple(grid) == STANDARD_GRID


def test_grid_case_lookup_and_error():
    case = grid_case("rbcast-n4-t1")
    assert case.protocol == "reliable-broadcast"
    with pytest.raises(KeyError, match="known cases"):
        grid_case("no-such-case")


def test_whole_grid_agrees():
    """The acceptance gate: every committed (task, adversary) pair
    agrees between the simulator and its reference verdict."""
    for case in standard_grid():
        report = oracle_params(*case.payload())
        assert report["agree"], (
            case.name,
            report["reference"],
            report["sim"]["violations"],
        )


# ----------------------------------------------------------------------
# Disagreement artifacts and replay
# ----------------------------------------------------------------------
def test_doctored_disagreement_emits_a_replayable_artifact(
    tmp_path, monkeypatch
):
    # Doctor the reference: claim n=3, t=1 weak agreement is solvable.
    # The simulator's equivocation split then *disagrees*, and the
    # violating schedule must come back as a replayable artifact.
    monkeypatch.setattr(
        oracle_module, "byzantine_regime_ok", lambda n, t: True
    )
    report = oracle_params("bosco-weak-agreement", None, 3, 1, 1, 2, seed=5)
    assert not report["agree"]
    artifact = report["artifact"]
    assert artifact is not None
    assert artifact["version"] == 1
    assert artifact["violations"]

    path = tmp_path / "disagreement.json"
    write_artifact(str(path), artifact)
    loaded = load_artifact(str(path))
    assert loaded == artifact

    outcome = replay(loaded)
    assert outcome["decisions"] == artifact["decisions"]
    assert outcome["blocked"] == artifact["blocked"]
    assert outcome["violations"] == artifact["violations"]


def test_replay_rejects_unknown_versions():
    with pytest.raises(ValueError, match="version"):
        replay({"version": 999})


def test_crash_side_artifact_replays(tmp_path):
    adversary = catalogue_by_name(3)["wait-free"]
    report = simulate_params(
        "hitting-set-consensus", adversary, 3, 0, 1, 2, seed=5
    )
    artifact = report["first_violation"]
    assert artifact is not None
    assert artifact["adversary"] is not None
    outcome = replay(artifact)
    assert outcome["violations"] == artifact["violations"]


# ----------------------------------------------------------------------
# Engine wiring
# ----------------------------------------------------------------------
def test_engine_simulate_is_cached(tmp_path):
    from repro.engine import ArtifactCache

    adversary = catalogue_by_name(3)["1-resilient"]
    engine = Engine(cache=ArtifactCache(tmp_path))
    first = engine.simulate(
        "hitting-set-consensus", adversary, n=3, k=2, schedules=2
    )
    assert first["pass"]
    again = Engine(cache=ArtifactCache(tmp_path))
    spec = JobSpec(
        "simulate", ("hitting-set-consensus", adversary, 3, 0, 2, 2, 7)
    )
    (result,) = again.run_jobs([spec])
    assert result.cache_hit
    assert result.value == first


def test_engine_oracle_many_matches_direct_calls():
    cases = [grid_case("wba-n4-t1"), grid_case("rbcast-n3-t1")]
    engine = Engine()
    reports = engine.oracle_many([case.payload() for case in cases])
    for case, report in zip(cases, reports):
        assert report == oracle_params(*case.payload())


def test_engine_simulate_many():
    engine = Engine()
    cases = [grid_case("wba-n4-t1"), grid_case("wba-n3-t1")]
    reports = engine.simulate_many(case.payload() for case in cases)
    assert reports[0]["pass"] and not reports[1]["pass"]


def test_simulate_payload_serialization_round_trips():
    from repro.engine import deserialize, serialize

    adversary = catalogue_by_name(3)["figure-5b"]
    payload = ("hitting-set-consensus", adversary, 3, 0, 1, 2, 7)
    assert deserialize(json.loads(json.dumps(serialize(payload)))) == payload

"""Unit tests for the IIS executor and its Chr^m correspondence."""

import pytest

from repro.runtime.iis import (
    IISExecution,
    all_two_round_runs,
    random_iis_run,
    random_partition,
    run_iis,
)
from repro.topology.enumeration import fubini_number
from repro.topology.subdivision import chr_complex


def test_requires_full_round():
    execution = IISExecution(3)
    with pytest.raises(ValueError):
        execution.step_round((frozenset({0, 1}),))


def test_requires_value_per_process():
    with pytest.raises(ValueError):
        IISExecution(2, initial_values={0: "a"})


def test_one_round_facet_in_chr1(chr1):
    execution = run_iis(3, [(frozenset({1}), frozenset({0, 2}))])
    assert execution.facet() in chr1


def test_facet_requires_a_round():
    with pytest.raises(ValueError):
        IISExecution(3).facet()


def test_two_round_runs_cover_chr2_facets(chr2):
    facets = {facet for _, _, facet in all_two_round_runs(3)}
    assert facets == chr2.facets
    assert len(facets) == fubini_number(3) ** 2


def test_full_information_values_flow():
    execution = IISExecution(3, initial_values={0: "a", 1: "b", 2: "c"})
    execution.step_round((frozenset({1}), frozenset({0, 2})))
    assert execution.value_view_of(1) == {1: "b"}
    assert execution.value_view_of(0) == {0: "a", 1: "b", 2: "c"}
    execution.step_round((frozenset({0, 1, 2}),))
    # Round 2: everyone sees everyone's round-1 views.
    view = execution.value_view_of(1)
    assert set(view) == {0, 1, 2}
    assert view[1] == {1: "b"}


def test_vertex_of_before_rounds_is_id():
    execution = IISExecution(3)
    assert execution.vertex_of(2) == 2


def test_random_partition_is_partition():
    import random

    rng = random.Random(0)
    for _ in range(50):
        partition = random_partition(4, rng)
        flattened = sorted(x for block in partition for x in block)
        assert flattened == [0, 1, 2, 3]


def test_random_iis_run_deterministic_by_seed():
    a = random_iis_run(3, 3, seed=9)
    b = random_iis_run(3, 3, seed=9)
    assert a.rounds == b.rounds
    assert a.facet() == b.facet()


def test_three_round_facets_in_chr3():
    """Spot-check: 3-round runs land inside Chr³ s (n = 2 to keep the
    ambient complex materializable)."""
    ambient = chr_complex(2, 3)
    for seed in range(10):
        execution = random_iis_run(2, 3, seed=seed)
        assert execution.facet() in ambient


def test_round_count(chr1):
    execution = random_iis_run(3, 4, seed=1)
    assert execution.round_count == 4

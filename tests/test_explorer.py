"""Model-checking tests: exhaustive schedule exploration."""

import pytest

from repro.protocols.commit_adopt import (
    check_commit_adopt_outputs,
    commit_adopt_protocol,
)
from repro.runtime.explorer import check_all_schedules, explore_outputs
from repro.runtime.immediate_snapshot import standalone_is_protocol
from repro.topology.enumeration import (
    is_valid_is_views,
    ordered_set_partitions,
    views_of_partition,
)


def test_explorer_counts_trivial_protocol():
    def factory(pid, memory):
        array = memory.snapshot_array("A")

        def proto():
            yield ("update", array, pid)
            return pid

        return proto()

    # One op + the returning resumption = 2 scheduler steps per
    # process: C(4, 2) = 6 interleavings.
    results = explore_outputs(factory, 2)
    assert len(results) == 6
    for _schedule, crashed, outputs in results:
        assert outputs == {0: 0, 1: 1}
        assert crashed == frozenset()


def test_is_protocol_all_schedules_n2():
    """Every interleaving of the BG IS protocol at n=2 satisfies the IS
    specification — exhaustively, not by sampling."""

    def factory(pid, memory):
        return standalone_is_protocol(pid, 2, memory, pid)

    def validate(outputs, crashed):
        views = {pid: frozenset(view) for pid, view in outputs.items()}
        assert is_valid_is_views(views)

    checked = check_all_schedules(factory, 2, validate)
    assert checked > 10


def test_is_protocol_reaches_every_is_run_n2():
    """The protocol is complete: every combinatorial IS run occurs in
    some schedule."""

    def factory(pid, memory):
        return standalone_is_protocol(pid, 2, memory, pid)

    reached = set()
    for _schedule, _crashed, outputs in explore_outputs(factory, 2):
        views = frozenset(
            (pid, frozenset(view)) for pid, view in outputs.items()
        )
        reached.add(views)
    expected = {
        frozenset(views_of_partition(p).items())
        for p in ordered_set_partitions(range(2))
    }
    assert reached == expected


def test_commit_adopt_all_schedules_n2():
    for proposals in ({0: "a", 1: "a"}, {0: "a", 1: "b"}):

        def factory(pid, memory, proposals=proposals):
            return commit_adopt_protocol(pid, 2, memory, proposals[pid])

        def validate(outputs, crashed, proposals=proposals):
            check_commit_adopt_outputs(proposals, outputs)

        checked = check_all_schedules(factory, 2, validate)
        assert checked > 10


def test_commit_adopt_with_crashes_n2():
    """Crash branches included: surviving outputs still legal."""
    proposals = {0: "a", 1: "b"}

    def factory(pid, memory):
        return commit_adopt_protocol(pid, 2, memory, proposals[pid])

    def validate(outputs, crashed):
        # Validate only the deciders' guarantees.
        if outputs:
            committed = {
                v for g, v in outputs.values() if g == "commit"
            }
            assert len(committed) <= 1
            for _, value in outputs.values():
                assert value in {"a", "b"}

    checked = check_all_schedules(
        factory, 2, validate, crash_budget=1
    )
    assert checked > 20


@pytest.mark.slow
def test_commit_adopt_all_schedules_n3():
    proposals = {0: "a", 1: "b", 2: "a"}

    def factory(pid, memory):
        return commit_adopt_protocol(pid, 3, memory, proposals[pid])

    def validate(outputs, crashed):
        check_commit_adopt_outputs(proposals, outputs)

    # 5 scheduler steps per process (4 ops + return): 15!/(5!)^3.
    checked = check_all_schedules(factory, 3, validate)
    assert checked == 756756


def test_non_wait_free_protocol_detected():
    def factory(pid, memory):
        array = memory.snapshot_array("A")

        def proto():
            while True:
                yield ("scan", array)

        return proto()

    with pytest.raises(AssertionError, match="wait-free"):
        explore_outputs(factory, 1, max_steps=10)

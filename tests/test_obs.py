"""repro.obs — the tracer, the exporters, and the instrumented layers.

Three properties carry the subsystem:

* **Off means free.**  With no active tracer, ``obs.span()`` returns one
  shared no-op singleton — no allocation, no contextvar write — so the
  tier-1 suite and the committed benchmark numbers are untouched.
* **Context is explicit.**  Nesting follows the contextvar; process
  boundaries are crossed only via carrier dicts, and pool-worker spans
  reattach under the submitting batch's span with their own pid.
* **Serialization is byte-stable.**  The same finished span always
  yields the same JSONL line, so traces diff cleanly in CI artifacts.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.adversaries import k_concurrency_alpha, t_resilience_alpha
from repro.core import full_affine_task, r_affine
from repro.engine import Engine
from repro.service.metrics import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    Metrics,
    format_histogram,
)
from repro.solver import SolveRequest, run_request
from repro.tasks.set_consensus import set_consensus_task


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled.

    The tracer is a module global: a test that enables it and fails
    mid-way must not leak an active tracer into its neighbours.
    """
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# The disabled fast path
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_noop_singleton():
    assert obs.get_tracer() is None
    first = obs.span("anything", attr=1)
    second = obs.span("else")
    assert first is second is obs.NOOP_SPAN
    assert first.recording is False
    # The full protocol is inert: attrs vanish, nesting records nothing.
    with obs.span("outer") as outer:
        outer.set_attr("ignored", 42)
        with obs.span("inner"):
            pass
    assert obs.current_carrier() is None


def test_disabled_tracer_buffers_no_spans():
    tracer = obs.Tracer()
    # Not installed: span() must not route to it.
    with obs.span("never"):
        pass
    assert tracer.stats()["spans_total"] == 0


# ----------------------------------------------------------------------
# Enabled: identity, nesting, attributes, errors
# ----------------------------------------------------------------------
def test_nesting_parents_and_trace_ids():
    tracer = obs.enable()
    with obs.span("root", layer="test") as root:
        assert root.recording is True
        with obs.span("child") as child:
            with obs.span("grandchild") as grandchild:
                pass
    spans = {s.name: s for s in tracer.drain()}
    root_s, child_s, grand_s = (
        spans["root"], spans["child"], spans["grandchild"],
    )
    assert root_s.parent_id is None
    assert root_s.trace_id == f"t{root_s.span_id}"
    assert child_s.parent_id == root_s.span_id
    assert grand_s.parent_id == child_s.span_id
    assert root_s.trace_id == child_s.trace_id == grand_s.trace_id
    # Children finish first, so durations nest monotonically.
    assert root_s.dur_s >= child_s.dur_s >= grand_s.dur_s >= 0.0
    assert root_s.attrs == {"layer": "test"}
    assert root_s.pid == os.getpid()


def test_sibling_spans_share_the_parent_not_each_other():
    tracer = obs.enable()
    with obs.span("parent") as parent:
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
    spans = {s.name: s for s in tracer.drain()}
    assert spans["first"].parent_id == parent.span_id
    assert spans["second"].parent_id == parent.span_id


def test_exception_records_error_attr_and_reraises():
    tracer = obs.enable()
    with pytest.raises(ValueError):
        with obs.span("doomed"):
            raise ValueError("boom")
    (span_obj,) = tracer.drain()
    assert span_obj.attrs["error"] == "ValueError"


def test_attrs_are_coerced_to_json_scalars():
    tracer = obs.enable()
    with obs.span("typed", flag=True, count=3, rate=0.5, label="x") as s:
        s.set_attr("missing", None)
        s.set_attr("exotic", {1, 2})  # non-scalar -> repr
    (span_obj,) = tracer.drain()
    assert span_obj.attrs["flag"] is True
    assert span_obj.attrs["count"] == 3
    assert span_obj.attrs["exotic"] == repr({1, 2})
    json.dumps(span_obj.to_dict())  # everything JSON-safe by construction


def test_max_spans_caps_buffer_but_not_aggregates():
    tracer = obs.enable(obs.Tracer(max_spans=3))
    for index in range(5):
        with obs.span("tick", i=index):
            pass
    stats = tracer.stats()
    assert stats["spans_total"] == 5
    assert stats["spans_buffered"] == 3
    assert stats["spans_dropped"] == 2
    assert stats["by_name"]["tick"]["count"] == 5
    assert len(tracer.drain()) == 3


def test_drain_empties_buffer_but_keeps_stats():
    tracer = obs.enable()
    with obs.span("once"):
        pass
    assert len(tracer.drain()) == 1
    assert tracer.drain() == []
    assert tracer.stats()["spans_total"] == 1


# ----------------------------------------------------------------------
# Serialization: byte-stable lines, dict round trip
# ----------------------------------------------------------------------
def test_span_serialization_is_byte_stable():
    tracer = obs.enable()
    with obs.span("stable", zebra=1, alpha=2):
        pass
    (span_obj,) = tracer.drain()
    line = obs.span_line(span_obj)
    assert line == obs.span_line(span_obj)  # same span, same bytes
    assert line == obs.span_line(span_obj.to_dict())
    # Canonical form: sorted keys, no whitespace.
    assert line == json.dumps(
        json.loads(line), sort_keys=True, separators=(",", ":")
    )
    assert '"alpha":2' in line and line.index('"alpha"') < line.index('"zebra"')


def test_from_dict_round_trip():
    tracer = obs.enable()
    with obs.span("original", nodes=7):
        pass
    (span_obj,) = tracer.drain()
    rebuilt = obs.Span.from_dict(span_obj.to_dict())
    assert rebuilt.to_dict() == span_obj.to_dict()
    assert obs.span_line(rebuilt) == obs.span_line(span_obj)


def test_export_and_load_round_trip(tmp_path):
    tracer = obs.enable()
    for index in range(3):
        with obs.span("io", i=index):
            pass
    spans = tracer.drain()
    path = str(tmp_path / "trace.jsonl")
    assert obs.export_jsonl(path, spans) == 3
    loaded = obs.load_spans(path)
    assert [s["name"] for s in loaded] == ["io", "io", "io"]
    assert loaded == [s.to_dict() for s in spans]
    # Appending is additive, not truncating.
    assert obs.export_jsonl(path, spans[:1]) == 1
    assert len(obs.load_spans(path)) == 4


# ----------------------------------------------------------------------
# Carriers: explicit propagation across context boundaries
# ----------------------------------------------------------------------
def test_carrier_attach_round_trip():
    obs.enable()
    assert obs.current_carrier() is None  # enabled but no open span
    with obs.span("root") as root:
        carrier = obs.current_carrier()
        assert carrier == {
            "trace_id": root.trace_id, "span_id": root.span_id,
        }
        with obs.attach(None):
            # Deliberate detachment: the next span is a fresh root.
            assert obs.current_carrier() is None
        # Context restored after the attach block.
        assert obs.current_carrier() == carrier


def test_attach_reparents_spans_under_foreign_context():
    tracer = obs.enable()
    carrier = {"trace_id": "tdead.beef", "span_id": "dead.beef"}
    with obs.attach(carrier):
        with obs.span("adopted"):
            pass
    (span_obj,) = tracer.drain()
    assert span_obj.trace_id == "tdead.beef"
    assert span_obj.parent_id == "dead.beef"


def test_ingest_reattaches_worker_span_dicts():
    tracer = obs.enable()
    shipped = [
        {
            "name": "engine.compute",
            "trace_id": "tabc.1",
            "span_id": "abc.2",
            "parent_id": "abc.1",
            "pid": 424242,
            "start_s": 1.0,
            "dur_s": 0.25,
            "attrs": {"kind": "solve"},
        }
    ]
    assert tracer.ingest(shipped) == 1
    stats = tracer.stats()
    assert stats["spans_total"] == 1
    assert stats["by_name"]["engine.compute"]["count"] == 1
    (span_obj,) = tracer.drain()
    assert span_obj.pid == 424242
    assert span_obj.to_dict() == shipped[0]


# ----------------------------------------------------------------------
# Instrumented layers: engine, solver, pool workers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def solve_queries():
    task = set_consensus_task(3, 2)
    return [
        SolveRequest(affine=r_affine(t_resilience_alpha(3, 1)), task=task),
        SolveRequest(affine=r_affine(k_concurrency_alpha(3, 1)), task=task),
    ]


def test_sequential_engine_emits_batch_and_compute_spans(solve_queries):
    engine = Engine()
    engine.solve_many(solve_queries)  # prime setups, untraced
    tracer = obs.enable()
    results = engine.solve_many(solve_queries)
    obs.disable()
    assert all(mapping is not None for mapping, _ in results)
    spans = tracer.drain()
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    (batch,) = by_name["engine.batch"]
    (lookup,) = by_name["engine.cache.lookup"]
    assert batch.parent_id is None
    assert lookup.parent_id == batch.span_id
    assert lookup.attrs == {"hits": 0, "pending": 2}
    assert batch.attrs["specs"] == 2 and batch.attrs["computed"] == 2
    computes = by_name["engine.compute"]
    searches = by_name["solver.search"]
    assert len(computes) == len(searches) == 2
    for compute in computes:
        assert compute.parent_id == batch.span_id
        assert compute.trace_id == batch.trace_id
    compute_ids = {c.span_id for c in computes}
    for search in searches:
        assert search.parent_id in compute_ids
        assert search.attrs["solvable"] is True
        assert search.attrs["nodes"] > 0


def test_pool_worker_spans_reattach_under_submitting_batch(solve_queries):
    tracer = obs.enable()
    with obs.span("test.root") as root:
        results = Engine(jobs=2).solve_many(solve_queries)
    obs.disable()
    assert all(mapping is not None for mapping, _ in results)
    spans = tracer.drain()
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    (batch,) = by_name["engine.batch"]
    assert batch.parent_id == root.span_id
    assert batch.trace_id == root.trace_id
    # Worker-produced spans: one codec+compute triple per job, shipped
    # back as dicts and reattached into the submitting trace.
    computes = by_name["engine.compute"]
    assert len(computes) == 2
    for compute in computes:
        assert compute.trace_id == root.trace_id
        assert compute.parent_id == batch.span_id
        assert compute.pid != os.getpid()  # really ran in a worker
    assert len(by_name["engine.codec.decode"]) >= 2
    assert len(by_name["engine.codec.encode"]) >= 2
    # Worker-side solver spans came along for the ride too.
    assert {s.trace_id for s in by_name["solver.search"]} == {root.trace_id}


def test_solver_setup_span_only_when_cold(solve_queries):
    request = solve_queries[0]
    run_request(request)  # prime the per-pair setup cache
    tracer = obs.enable()
    run_request(request)
    obs.disable()
    names = [s.name for s in tracer.drain()]
    assert "solver.search" in names
    assert "solver.setup" not in names  # warm: no setup work to time


# ----------------------------------------------------------------------
# Metrics integration: consistent snapshots, trace read-out
# ----------------------------------------------------------------------
def test_metrics_snapshot_has_trace_section_only_when_tracing():
    metrics = Metrics()
    metrics.inc("requests_total")
    metrics.observe("request_seconds", 0.004)
    assert "trace" not in metrics.snapshot()
    assert "repro_trace_" not in metrics.render_text()

    obs.enable()
    with obs.span("service.request"):
        pass
    snap = metrics.snapshot()
    assert snap["trace"]["spans_total"] == 1
    assert snap["trace"]["by_name"]["service.request"]["count"] == 1
    text = metrics.render_text()
    assert "repro_trace_spans_total 1" in text
    assert 'repro_trace_span_count{name="service.request"} 1' in text
    # The service's own lines are untouched by the extension.
    assert "repro_service_requests_total 1" in text


def test_format_histogram_matches_locked_snapshot():
    histogram = LatencyHistogram()
    for seconds in (0.0002, 0.0002, 0.003, 0.05, 1.7):
        histogram.record(seconds)
    snap = histogram.snapshot()
    assert snap == format_histogram(*histogram.raw())
    assert snap["count"] == 5
    assert snap["max_s"] == 1.7
    assert snap["mean_s"] == pytest.approx(sum((0.0002, 0.0002, 0.003, 0.05, 1.7)) / 5, rel=1e-3)
    # Quantiles clamp to bucket bounds and never exceed the real max.
    assert snap["p50_s"] <= snap["p99_s"] <= snap["max_s"]
    assert any(snap["p50_s"] == pytest.approx(min(bound, 1.7)) for bound in BUCKET_BOUNDS)


def test_format_histogram_empty():
    assert format_histogram([0] * (len(BUCKET_BOUNDS) + 1), 0, 0.0, 0.0) == {
        "count": 0, "mean_s": 0.0, "p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0,
    }


# ----------------------------------------------------------------------
# Summaries and the Prometheus read-out
# ----------------------------------------------------------------------
def test_summarize_and_render(tmp_path):
    tracer = obs.enable()
    for index in range(4):
        with obs.span("engine.compute", kind="solve"):
            pass
    with obs.span("engine.batch", specs=4):
        pass
    path = str(tmp_path / "t.jsonl")
    obs.export_jsonl(path, tracer.drain())
    obs.disable()

    summary = obs.summarize(obs.load_spans(path))
    assert summary["spans"] == 5
    assert summary["by_name"]["engine.compute"]["count"] == 4
    assert summary["by_name"]["engine.batch"]["count"] == 1
    assert len(summary["slowest"]) == 5
    text = obs.render_summary(summary, sort="count")
    assert "engine.compute" in text and "slowest spans:" in text
    limited = obs.render_summary(summary, sort="count", limit=1)
    assert "engine.batch" not in limited.split("slowest")[0]
    with pytest.raises(ValueError):
        obs.render_summary(summary, sort="nonsense")


def test_render_trace_text_shape():
    assert obs.render_trace_text(None) == ""
    stats = {
        "spans_total": 3,
        "spans_dropped": 1,
        "by_name": {"a.b": {"count": 3, "total_s": 0.5, "max_s": 0.4}},
    }
    text = obs.render_trace_text(stats)
    assert text.splitlines() == [
        "repro_trace_spans_total 3",
        "repro_trace_spans_dropped_total 1",
        'repro_trace_span_count{name="a.b"} 3',
        'repro_trace_span_seconds_total{name="a.b"} 0.5',
    ]

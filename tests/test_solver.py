"""Tests for ``repro.solver`` — the typed solve surface and its kernels.

The load-bearing guarantees:

* the default ``bitset`` kernel is **tree-identical** to the legacy
  :class:`~repro.tasks.solvability.MapSearch` oracle: same verdicts,
  same returned maps *and the same node counts*, fuzzed over randomly
  thinned tasks (so certificates, budget stubs and resume seeds are
  interchangeable between the two);
* the opt-in ``fc`` kernel prunes soundly: verdict and returned map
  still match the oracle, and it can never back a certificate or a
  resume;
* :class:`SolveRequest` normalization makes equal queries equal values
  with one cache digest, regardless of override insertion order;
* the deprecated spellings — positional payload tuples,
  ``node_budget=`` / ``max_nodes=`` — warn but keep working.
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.certify import cert_to_bytes, certified_search
from repro.cli import main
from repro.core import full_affine_task
from repro.engine import Engine, JobSpec, digest, serialize
from repro.engine.serialize import deserialize
from repro.solver import (
    DEFAULT_KERNEL,
    KERNEL_BITSET,
    KERNEL_FC,
    KERNEL_LEGACY,
    KERNEL_SYMMETRY,
    KERNELS,
    TREE_IDENTICAL_KERNELS,
    BitsetKernel,
    ForwardCheckingKernel,
    SolveRequest,
    SolveResult,
    as_solve_request,
    make_searcher,
    run_request,
    split_request,
)
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import (
    MapSearch,
    SearchBudgetExceeded,
    find_carried_map,
    resolve_budget,
)
from repro.tasks.task import Task
from repro.topology.simplex import vertex_key


@pytest.fixture(scope="session")
def wf_affine():
    """The wait-free one-round task ``Chr s`` (3 processes)."""
    return full_affine_task(3, 1)


def _thinned_task(base: Task, seed: int) -> Task:
    """A random sub-task: ``Delta`` with some output simplices dropped."""
    rng = random.Random(seed)
    table = {}
    for size in range(1, base.n + 1):
        for combo in combinations(range(base.n), size):
            participants = frozenset(combo)
            outputs = sorted(
                base.allowed_outputs(participants),
                key=lambda sigma: sorted(
                    (v.process, repr(v.value)) for v in sigma
                ),
            )
            kept = [sigma for sigma in outputs if rng.random() < 0.8]
            table[participants] = frozenset(kept or outputs)
    return Task(
        base.n,
        base.input_complex,
        base.output_complex,
        lambda participants: table[frozenset(participants)],
        name=f"{base.name}-thinned-{seed}",
    )


# ------------------------------------------------------- differential parity
def test_bitset_is_tree_identical_on_known_instances(
    wf_affine, ra_1res, ra_1of
):
    for affine, k in (
        (wf_affine, 2),
        (wf_affine, 3),
        (ra_1res, 1),
        (ra_1res, 2),
        (ra_1of, 1),
    ):
        task = set_consensus_task(3, k)
        oracle = MapSearch(affine, task)
        expected = oracle.search()
        kernel = BitsetKernel(affine, task)
        assert kernel.search() == expected, (affine.name, k)
        assert kernel.nodes_explored == oracle.nodes_explored, (
            affine.name,
            k,
        )


def test_differential_fuzz_thinned_tasks(wf_affine):
    """Seeded random sub-tasks: bitset tree-identical, fc map-identical."""
    base = set_consensus_task(3, 3)
    verdicts = set()
    for seed in range(8):
        task = _thinned_task(base, seed)
        oracle = MapSearch(wf_affine, task)
        expected = oracle.search()
        verdicts.add(expected is not None)

        bitset = BitsetKernel(wf_affine, task)
        assert bitset.search() == expected, seed
        assert bitset.nodes_explored == oracle.nodes_explored, seed

        fc = ForwardCheckingKernel(wf_affine, task)
        assert fc.search() == expected, seed
        # Sound pruning can only shrink the tree, never grow it.
        assert fc.nodes_explored <= oracle.nodes_explored, seed
    # The seeds exercise both verdicts.
    assert verdicts == {True, False}


def test_budget_semantics_are_identical(wf_affine):
    task = set_consensus_task(3, 2)
    for budget in (1, 7, 20):
        oracle = MapSearch(wf_affine, task)
        with pytest.raises(SearchBudgetExceeded) as legacy_info:
            oracle.search(budget=budget)
        kernel = BitsetKernel(wf_affine, task)
        with pytest.raises(SearchBudgetExceeded) as bitset_info:
            kernel.search(budget=budget)
        assert str(bitset_info.value) == str(legacy_info.value)
        assert (
            bitset_info.value.nodes_explored
            == legacy_info.value.nodes_explored
        )
        assert (
            bitset_info.value.partial_assignment
            == legacy_info.value.partial_assignment
        )


def test_resume_parity(ra_1res):
    task = set_consensus_task(3, 2)
    expected = MapSearch(ra_1res, task).search()
    assert expected is not None
    with pytest.raises(SearchBudgetExceeded) as info:
        MapSearch(ra_1res, task).search(budget=20)
    partial = info.value.partial_assignment

    oracle = MapSearch(ra_1res, task)
    kernel = BitsetKernel(ra_1res, task)
    assert oracle.search(resume_from=partial) == expected
    assert kernel.search(resume_from=partial) == expected
    assert kernel.nodes_explored == oracle.nodes_explored


def test_bitset_seed_rejects_what_legacy_rejects(ra_1res):
    task = set_consensus_task(3, 2)
    oracle = MapSearch(ra_1res, task)
    kernel = BitsetKernel(ra_1res, task)
    stray = {oracle.vertices[-1]: oracle.domains[oracle.vertices[-1]][0]}
    for searcher in (oracle, kernel):
        with pytest.raises(ValueError, match="initial segment"):
            searcher.search(resume_from=stray)


def test_fc_refuses_resume_and_requests_coerce(ra_1res):
    task = set_consensus_task(3, 2)
    with pytest.raises(ValueError, match="cannot honor"):
        ForwardCheckingKernel(ra_1res, task).search(
            resume_from={object(): object()}
        )
    with pytest.raises(SearchBudgetExceeded) as info:
        MapSearch(ra_1res, task).search(budget=20)
    request = SolveRequest(
        affine=ra_1res,
        task=task,
        resume=info.value.partial_assignment,
        kernel=KERNEL_FC,
    )
    # A resume-carrying fc request silently runs on a tree-identical kernel.
    assert isinstance(make_searcher(request), BitsetKernel)
    assert run_request(request).mapping == MapSearch(ra_1res, task).search()


# ------------------------------------------------------------ the typed API
def test_run_request_returns_typed_result(ra_1res, wf_affine):
    solvable = run_request(
        SolveRequest(affine=ra_1res, task=set_consensus_task(3, 2))
    )
    assert isinstance(solvable, SolveResult)
    assert solvable.solvable and solvable.verdict == "solvable"
    assert solvable.kernel == DEFAULT_KERNEL == KERNEL_BITSET
    assert solvable.as_pair() == (solvable.mapping, solvable.nodes)

    oracle = MapSearch(wf_affine, set_consensus_task(3, 2))
    assert oracle.search() is None
    refuted = run_request(
        SolveRequest(affine=wf_affine, task=set_consensus_task(3, 2))
    )
    assert not refuted.solvable and refuted.mapping is None
    assert refuted.nodes == oracle.nodes_explored


def test_request_normalization_is_order_independent(wf_affine):
    task = set_consensus_task(3, 2)
    search = MapSearch(wf_affine, task)
    a, b = search.vertices[0], search.vertices[1]
    overrides_ab = {a: tuple(search.domains[a]), b: tuple(search.domains[b])}
    overrides_ba = {b: tuple(search.domains[b]), a: tuple(search.domains[a])}
    first = SolveRequest(
        affine=wf_affine, task=task, domain_overrides=overrides_ab
    )
    second = SolveRequest(
        affine=wf_affine, task=task, domain_overrides=overrides_ba
    )
    assert first == second
    assert hash(first) == hash(second)
    assert digest(first) == digest(second)
    # Stored order is structural, never insertion order.
    keys = [vertex_key(v) for v, _ in first.domain_overrides]
    assert keys == sorted(keys)


def test_kernel_is_part_of_the_digest(ra_1res):
    task = set_consensus_task(3, 2)
    digests = {
        digest(SolveRequest(affine=ra_1res, task=task, kernel=kernel))
        for kernel in KERNELS
    }
    assert len(digests) == len(KERNELS)
    with pytest.raises(ValueError, match="unknown kernel"):
        SolveRequest(affine=ra_1res, task=task, kernel="quantum")


def test_solvereq_serialize_roundtrip(ra_1res):
    task = set_consensus_task(3, 2)
    request = SolveRequest(
        affine=ra_1res, task=task, budget=123, kernel=KERNEL_FC
    )
    text = serialize(request)
    rebuilt = deserialize(text)
    assert isinstance(rebuilt, SolveRequest)
    assert rebuilt.budget == 123 and rebuilt.kernel == KERNEL_FC
    # Tasks compare by tabulated Delta, not identity — byte equality of
    # the canonical form is the round-trip property.
    assert serialize(rebuilt) == text


# ------------------------------------------------------- deprecation shims
def test_legacy_tuple_payload_warns_and_works(ra_1res):
    task = set_consensus_task(3, 2)
    typed = JobSpec(
        "solve", (SolveRequest(affine=ra_1res, task=task),)
    ).run()
    with pytest.warns(DeprecationWarning, match="SolveRequest"):
        legacy = JobSpec("solve", (ra_1res, task, None, None)).run()
    assert legacy == typed
    with pytest.warns(DeprecationWarning, match="SolveRequest"):
        request = as_solve_request((ra_1res, task, None, None))
    assert request == SolveRequest(affine=ra_1res, task=task)
    # The service wire (protocol v1) passes tuples by design: no warning.
    assert as_solve_request((ra_1res, task, None, None), warn=False) == request


def test_budget_alias_kwargs_warn_and_work(wf_affine):
    task = set_consensus_task(3, 2)
    with pytest.warns(DeprecationWarning, match="node_budget"):
        assert resolve_budget(None, node_budget=7) == 7
    with pytest.warns(DeprecationWarning, match="max_nodes"):
        # An explicit budget wins over the alias.
        assert resolve_budget(10, max_nodes=5) == 10
    for searcher in (MapSearch(wf_affine, task), BitsetKernel(wf_affine, task)):
        with pytest.warns(DeprecationWarning, match="max_nodes"):
            with pytest.raises(SearchBudgetExceeded) as info:
                searcher.search(max_nodes=5)
        assert info.value.nodes_explored == 6
    with pytest.warns(DeprecationWarning, match="node_budget"):
        mapping = find_carried_map(wf_affine, task, node_budget=10**9)
    assert mapping is None


# ---------------------------------------------------------------- splitting
def test_split_request_slices_cover_and_stay_stable(ra_1res, wf_affine):
    task = set_consensus_task(3, 2)
    request = SolveRequest(affine=ra_1res, task=task)
    slices = split_request(request, parts=2)
    assert len(slices) == 2
    assert all(s.kernel == request.kernel for s in slices)
    # First slice (in canonical order) that solves returns the full map.
    expected = run_request(request).mapping
    for sub in slices:
        result = run_request(sub)
        if result.mapping is not None:
            assert result.mapping == expected
            break
    else:  # pragma: no cover - would mean the union lost solutions
        pytest.fail("no slice recovered the solvable verdict")

    # Unsolvable: every slice refutes its share.
    refuting = split_request(
        SolveRequest(affine=wf_affine, task=task), parts=2
    )
    assert refuting and all(
        run_request(sub).mapping is None for sub in refuting
    )
    # Slice identity is insertion-order independent (the platform fix):
    # the same split built twice yields identical digests.
    again = split_request(SolveRequest(affine=wf_affine, task=task), parts=2)
    assert [digest(s) for s in refuting] == [digest(s) for s in again]


# ------------------------------------------------------------------- engine
def test_engine_kernel_selection(ra_1res):
    task = set_consensus_task(3, 2)
    expected = Engine().solve(ra_1res, task)
    assert Engine(kernel=KERNEL_FC).solve(ra_1res, task) == expected
    assert Engine(kernel=KERNEL_LEGACY).solve(ra_1res, task) == expected
    assert Engine().solve(ra_1res, task, kernel=KERNEL_FC) == expected
    with pytest.raises(ValueError, match="unknown kernel"):
        Engine(kernel="quantum")


def test_engine_results_carry_the_kernel(ra_1res):
    task = set_consensus_task(3, 2)
    engine = Engine(kernel=KERNEL_FC)
    (result,) = engine.run_jobs(
        [JobSpec("solve", (SolveRequest(affine=ra_1res, task=task),))]
    )
    assert result.ok and result.kernel == KERNEL_BITSET
    (typed,) = engine.solve_results([(ra_1res, task, None)])
    assert typed.kernel == KERNEL_FC and typed.solvable
    # fc prunes, so node counts differ — but the map is the oracle's.
    assert typed.mapping == Engine().solve(ra_1res, task)


def test_engine_fc_resume_coerces_to_tree_identical(ra_1res):
    task = set_consensus_task(3, 2)
    engine = Engine(kernel=KERNEL_FC)
    stub = engine.certify(ra_1res, task, 20)
    assert stub["kind"] == "budget"
    mapping, nodes = engine.resume_solve(ra_1res, task, stub)
    assert mapping == Engine().solve(ra_1res, task)
    assert nodes > 0


def test_engine_split_retry_still_resolves_with_bitset(wf_affine):
    """A starved budget resolves through split-retry on the new kernel."""
    task = set_consensus_task(3, 3)
    (mapping, nodes) = Engine(split_retries=6).solve_many(
        [(wf_affine, task, 3)]
    )[0]
    assert mapping == MapSearch(wf_affine, task).search()
    assert nodes > 0


# -------------------------------------------------------- certificates / CLI
def test_certificates_are_byte_identical_across_kernels(ra_1res, wf_affine):
    for affine, budget in ((ra_1res, None), (wf_affine, None), (ra_1res, 20)):
        task = set_consensus_task(3, 2)
        _, legacy = certified_search(
            affine, task, budget=budget, kernel=KERNEL_LEGACY
        )
        _, bitset = certified_search(
            affine, task, budget=budget, kernel=KERNEL_BITSET
        )
        # fc is not tree-identical: extraction coerces it to the default.
        _, coerced = certified_search(
            affine, task, budget=budget, kernel=KERNEL_FC
        )
        assert cert_to_bytes(bitset) == cert_to_bytes(legacy)
        assert cert_to_bytes(coerced) == cert_to_bytes(legacy)


def test_cli_kernel_flag_routes_through_the_engine(capsys):
    assert main(["fact", "--kernel", "fc"]) == 0
    out = capsys.readouterr().out
    assert "min k-set consensus" in out


# ----------------------------------------------------------------- exports
def test_curated_exports_resolve():
    import repro.solver as solver_pkg
    import repro.tasks.solvability as solvability_module

    for module in (solver_pkg, solvability_module):
        assert module.__all__ == sorted(module.__all__), module.__name__
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)
    assert TREE_IDENTICAL_KERNELS == {KERNEL_LEGACY, KERNEL_BITSET}
    assert set(KERNELS) == {
        KERNEL_LEGACY,
        KERNEL_BITSET,
        KERNEL_FC,
        KERNEL_SYMMETRY,
    }

"""Unit tests for repro.topology.simplex."""


from repro.topology.simplex import (
    EMPTY_SIMPLEX,
    boundary,
    closure_of,
    dim,
    faces,
    is_face,
    is_proper_face,
    proper_faces,
    simplex,
    vertices_of,
)


def test_simplex_builds_frozenset():
    assert simplex([1, 2, 2, 3]) == frozenset({1, 2, 3})


def test_dim_counts_vertices_minus_one():
    assert dim(simplex([1, 2, 3])) == 2
    assert dim(simplex([7])) == 0


def test_empty_simplex_has_dim_minus_one():
    assert dim(EMPTY_SIMPLEX) == -1


def test_faces_excludes_empty_by_default():
    fs = list(faces(simplex([1, 2])))
    assert frozenset() not in fs
    assert set(fs) == {frozenset({1}), frozenset({2}), frozenset({1, 2})}


def test_faces_can_include_empty():
    fs = list(faces(simplex([1]), include_empty=True))
    assert frozenset() in fs


def test_faces_count_is_two_power():
    sigma = simplex(range(4))
    assert len(list(faces(sigma))) == 2**4 - 1


def test_proper_faces_excludes_self():
    sigma = simplex([1, 2, 3])
    assert sigma not in set(proper_faces(sigma))
    assert len(list(proper_faces(sigma))) == 2**3 - 2


def test_boundary_of_triangle_is_three_edges():
    sigma = simplex([1, 2, 3])
    edges = set(boundary(sigma))
    assert edges == {frozenset({1, 2}), frozenset({1, 3}), frozenset({2, 3})}


def test_boundary_of_vertex_is_empty():
    assert list(boundary(simplex([1]))) == []


def test_is_face_subset_semantics():
    assert is_face(simplex([1]), simplex([1, 2]))
    assert is_face(simplex([1, 2]), simplex([1, 2]))
    assert not is_face(simplex([3]), simplex([1, 2]))


def test_is_proper_face_strict():
    assert is_proper_face(simplex([1]), simplex([1, 2]))
    assert not is_proper_face(simplex([1, 2]), simplex([1, 2]))


def test_vertices_of_union():
    assert vertices_of([simplex([1, 2]), simplex([2, 3])]) == frozenset(
        {1, 2, 3}
    )


def test_closure_is_inclusion_closed():
    closed = closure_of([simplex([1, 2, 3])])
    for sigma in closed:
        for face in faces(sigma):
            assert face in closed


def test_closure_of_two_simplices():
    closed = closure_of([simplex([1, 2]), simplex([3])])
    assert simplex([1]) in closed
    assert simplex([3]) in closed
    assert simplex([1, 3]) not in closed

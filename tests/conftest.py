"""Shared fixtures: the standard complexes and agreement functions.

Everything here is cached at session scope — ``Chr s`` / ``Chr² s`` and
the affine tasks are pure values reused by most test modules.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
    wait_free_alpha,
)
from repro.core import r_affine, r_k_obstruction_free, r_t_resilient
from repro.topology import chr_complex, standard_simplex


@pytest.fixture(scope="session")
def s3():
    return standard_simplex(3)


@pytest.fixture(scope="session")
def chr1():
    return chr_complex(3, 1)


@pytest.fixture(scope="session")
def chr2():
    return chr_complex(3, 2)


@pytest.fixture(scope="session")
def chr1_n4():
    return chr_complex(4, 1)


@pytest.fixture(scope="session")
def alpha_1of():
    return k_concurrency_alpha(3, 1)


@pytest.fixture(scope="session")
def alpha_2of():
    return k_concurrency_alpha(3, 2)


@pytest.fixture(scope="session")
def alpha_1res():
    return t_resilience_alpha(3, 1)


@pytest.fixture(scope="session")
def alpha_wf():
    return wait_free_alpha(3)


@pytest.fixture(scope="session")
def alpha_fig5b():
    return agreement_function_of(figure5b_adversary(), name="fig5b")


@pytest.fixture(scope="session")
def ra_1of(alpha_1of):
    return r_affine(alpha_1of)


@pytest.fixture(scope="session")
def ra_2of(alpha_2of):
    return r_affine(alpha_2of)


@pytest.fixture(scope="session")
def ra_1res(alpha_1res):
    return r_affine(alpha_1res)


@pytest.fixture(scope="session")
def ra_fig5b(alpha_fig5b):
    return r_affine(alpha_fig5b)


@pytest.fixture(scope="session")
def rkof_1():
    return r_k_obstruction_free(3, 1)


@pytest.fixture(scope="session")
def rtres_1():
    return r_t_resilient(3, 1)

"""Tests for the BG simulation (E19)."""

import random

import pytest

from repro.runtime.bg_simulation import (
    check_simulated_history,
    full_information_code,
    run_bg_simulation,
)


def codes(n_sim=3, rounds=2):
    return {j: full_information_code(rounds) for j in range(n_sim)}


def test_crash_free_all_simulated_complete():
    outcome = run_bg_simulation(codes(), n_simulators=2, seed=1)
    assert outcome.completed_simulated() == frozenset({0, 1, 2})
    assert outcome.histories_agree()


def test_histories_satisfy_memory_semantics():
    outcome = run_bg_simulation(codes(), n_simulators=2, seed=3)
    for j, history in outcome.merged_histories().items():
        check_simulated_history(j, history)


def test_single_simulator_runs_everything():
    outcome = run_bg_simulation(codes(), n_simulators=1, seed=4)
    assert outcome.completed_simulated() == frozenset({0, 1, 2})


def test_three_simulators():
    outcome = run_bg_simulation(codes(), n_simulators=3, seed=5)
    assert outcome.completed_simulated() == frozenset({0, 1, 2})
    assert outcome.histories_agree()


def test_crashed_simulator_blocks_at_most_one_process():
    """The BG bound: f crashed simulators block at most f simulated
    processes, so >= n - f complete."""
    for seed in range(15):
        outcome = run_bg_simulation(
            codes(),
            n_simulators=2,
            crash_simulators={1: random.Random(seed).randint(0, 60)},
            seed=seed,
        )
        assert len(outcome.completed_simulated()) >= 2, seed
        assert outcome.histories_agree()
        for j, history in outcome.merged_histories().items():
            check_simulated_history(j, history)


def test_immediate_crash_still_makes_progress():
    outcome = run_bg_simulation(
        codes(), n_simulators=2, crash_simulators={0: 0}, seed=9
    )
    assert len(outcome.completed_simulated()) >= 2


def test_outputs_are_final_snapshots():
    outcome = run_bg_simulation(codes(rounds=1), n_simulators=2, seed=11)
    for results in outcome.per_simulator.values():
        for j, (output, history) in results.items():
            # The code returns its last snapshot.
            assert output == history[-1][1]


def test_longer_protocols():
    outcome = run_bg_simulation(
        codes(n_sim=3, rounds=4), n_simulators=2, seed=13
    )
    assert outcome.completed_simulated() == frozenset({0, 1, 2})
    for j, history in outcome.merged_histories().items():
        check_simulated_history(j, history)
        assert sum(1 for kind, _ in history if kind == "write") == 4


def test_more_simulated_than_simulators():
    outcome = run_bg_simulation(
        {j: full_information_code(2) for j in range(5)},
        n_simulators=2,
        seed=17,
    )
    assert outcome.completed_simulated() == frozenset(range(5))


def test_history_checker_catches_violations():
    with pytest.raises(AssertionError):
        check_simulated_history(
            0, [("write", "x"), ("snapshot", (None, None, None))]
        )
    with pytest.raises(AssertionError):
        check_simulated_history(
            0,
            [
                ("write", "x"),
                ("snapshot", ("x", "y", None)),
                ("write", "z"),
                ("snapshot", ("z", None, None)),  # forgot p1
            ],
        )

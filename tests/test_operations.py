"""Tests for the adversary algebra (union/intersection/renaming)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import (
    Adversary,
    is_fair,
    k_obstruction_free,
    setcon,
    t_resilient,
    wait_free,
)
from repro.adversaries.operations import (
    check_setcon_monotone,
    includes,
    intersection,
    is_permutation_equivalent,
    renamed,
    union,
    union_fairness_counterexample,
)


def test_union_collects_live_sets():
    a = Adversary(3, [{0}])
    b = Adversary(3, [{1, 2}])
    assert union(a, b).live_sets == frozenset(
        {frozenset({0}), frozenset({1, 2})}
    )


def test_intersection():
    a = t_resilient(3, 1)
    b = k_obstruction_free(3, 2)
    both = intersection(a, b)
    # Live sets of size exactly 2 (>= n-t and <= k).
    assert all(len(live) == 2 for live in both)
    assert len(both) == 3


def test_includes():
    assert includes(wait_free(3), t_resilient(3, 1))
    assert not includes(t_resilient(3, 1), wait_free(3))


def test_mismatched_universes_rejected():
    with pytest.raises(ValueError):
        union(wait_free(2), wait_free(3))


def test_renamed():
    a = Adversary(3, [{0, 1}])
    rotated = renamed(a, {0: 1, 1: 2, 2: 0})
    assert rotated.live_sets == frozenset({frozenset({1, 2})})


def test_renamed_requires_permutation():
    with pytest.raises(ValueError):
        renamed(Adversary(3, [{0}]), {0: 0, 1: 0, 2: 2})


def test_permutation_equivalence():
    a = Adversary(3, [{0}, {1, 2}])
    b = Adversary(3, [{2}, {0, 1}])
    assert is_permutation_equivalent(a, b)
    c = Adversary(3, [{0}, {0, 1}])
    assert not is_permutation_equivalent(a, c)


def test_setcon_monotone_on_standard_chain():
    chain = [
        t_resilient(3, 0),
        t_resilient(3, 1),
        t_resilient(3, 2),
    ]
    for smaller, larger in zip(chain, chain[1:]):
        assert includes(larger, smaller)
        assert setcon(smaller) <= setcon(larger)


@st.composite
def adversary_pairs(draw, n=3):
    subsets = [
        frozenset(c)
        for size in range(1, n + 1)
        for c in combinations(range(n), size)
    ]
    a = Adversary(
        n, draw(st.lists(st.sampled_from(subsets), min_size=1, max_size=4))
    )
    b = Adversary(
        n, draw(st.lists(st.sampled_from(subsets), min_size=1, max_size=4))
    )
    return a, b


@given(adversary_pairs())
@settings(max_examples=50, deadline=None)
def test_setcon_monotone_under_inclusion(pair):
    a, b = pair
    assert check_setcon_monotone(a, union(a, b))
    assert check_setcon_monotone(intersection(a, b) if intersection(a, b).live_sets else a, a)


@given(adversary_pairs())
@settings(max_examples=50, deadline=None)
def test_union_is_join(pair):
    a, b = pair
    combined = union(a, b)
    assert includes(combined, a)
    assert includes(combined, b)


def test_fairness_not_closed_under_union():
    """Reproduction finding: the fair class is not a union-closed
    family — 45 fair pairs at n=3 have unfair unions."""
    pair = union_fairness_counterexample(3)
    assert pair is not None
    a, b = pair
    assert is_fair(a) and is_fair(b)
    assert not is_fair(union(a, b))


def test_fairness_closed_under_permutation():
    a = t_resilient(3, 1)
    assert is_fair(renamed(a, {0: 2, 1: 0, 2: 1}))

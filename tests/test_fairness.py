"""Unit and property tests for fairness (Definition 2)."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.adversary import (
    Adversary,
    k_obstruction_free,
    symmetric_from_sizes,
    t_resilient,
    wait_free,
)
from repro.adversaries.catalogue import figure5b_adversary, unfair_example
from repro.adversaries.fairness import (
    check_superset_closed_implies_fair,
    check_symmetric_implies_fair,
    fairness_counterexample,
    fairness_violations,
    is_fair,
)


def test_wait_free_is_fair():
    assert is_fair(wait_free(3))


def test_t_resilient_is_fair():
    assert is_fair(t_resilient(3, 1))
    assert is_fair(t_resilient(4, 2))


def test_k_obstruction_free_is_fair():
    assert is_fair(k_obstruction_free(3, 1))
    assert is_fair(k_obstruction_free(3, 2))


def test_figure5b_is_fair():
    assert is_fair(figure5b_adversary())


def test_symmetric_sizes_is_fair():
    assert is_fair(symmetric_from_sizes(3, [1, 3]))


def test_unfair_example_is_unfair():
    adversary = unfair_example()
    violation = fairness_counterexample(adversary)
    assert violation is not None
    # The documented witness: P = {0, 2}, Q = {0}.
    assert violation.participants == frozenset({0, 2})
    assert violation.targets == frozenset({0})
    assert violation.lhs == 0 and violation.rhs == 1


def test_violation_string_mentions_sets():
    violation = fairness_counterexample(unfair_example())
    assert "P=" in str(violation) and "Q=" in str(violation)


def test_all_violations_enumerable():
    violations = list(fairness_violations(unfair_example()))
    assert len(violations) >= 1
    for violation in violations:
        assert violation.lhs != violation.rhs


def test_fair_adversary_has_no_counterexample():
    assert fairness_counterexample(t_resilient(3, 1)) is None


@st.composite
def random_adversaries(draw, n=3):
    subsets = [
        frozenset(c)
        for size in range(1, n + 1)
        for c in combinations(range(n), size)
    ]
    live = draw(st.lists(st.sampled_from(subsets), min_size=1, max_size=4))
    return Adversary(n, live)


@given(random_adversaries())
@settings(max_examples=40, deadline=None)
def test_superset_closed_implies_fair(adversary):
    """The paper's claim, checked on the superset closure."""
    assert check_superset_closed_implies_fair(adversary.superset_closure())


@given(random_adversaries())
@settings(max_examples=40, deadline=None)
def test_symmetric_implies_fair(adversary):
    assert check_symmetric_implies_fair(adversary.symmetric_closure())


@given(random_adversaries())
@settings(max_examples=30, deadline=None)
def test_fairness_definition_direction(adversary):
    """setcon(A|P,Q) never exceeds min(|Q|, setcon(A|P)) on fair ones;
    on any adversary the two sides agree exactly when fair."""
    fair = is_fair(adversary)
    has_violation = fairness_counterexample(adversary) is not None
    assert fair == (not has_violation)

"""Unit tests for R_A (Definition 9) — the paper's central construction."""


from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    unfair_example,
)
from repro.core.ra import DEFAULT_VARIANT, RABuilder, r_affine, r_affine_of_adversary


def test_default_variant_is_union():
    """The computational disambiguation of Definition 9 (E9)."""
    assert DEFAULT_VARIANT == "union"


def test_wait_free_ra_is_everything(alpha_wf, chr2):
    assert r_affine(alpha_wf).complex == chr2


def test_figure7a_facet_count(ra_1of):
    """Figure 7a: R_A for alpha(P)=min(|P|,1) has 73 facets."""
    assert len(ra_1of.complex.facets) == 73


def test_figure7b_facet_count(ra_fig5b):
    """Figure 7b: the running example's affine task."""
    assert len(ra_fig5b.complex.facets) == 145


def test_ra_1res_facet_count(ra_1res):
    assert len(ra_1res.complex.facets) == 142


def test_ra_is_pure(ra_1of, ra_fig5b, ra_1res):
    for task in (ra_1of, ra_fig5b, ra_1res):
        assert task.complex.is_pure(2)


def test_ra_nonempty_for_all_zoo_models(
    alpha_1of, alpha_2of, alpha_1res, alpha_fig5b, alpha_wf
):
    for alpha in (alpha_1of, alpha_2of, alpha_1res, alpha_fig5b, alpha_wf):
        assert not r_affine(alpha).complex.complex.is_empty()


def test_ra_monotone_in_alpha():
    """Pointwise-larger agreement functions keep more facets."""
    weaker = r_affine(k_concurrency_alpha(3, 1))
    stronger = r_affine(k_concurrency_alpha(3, 2))
    everything = r_affine(k_concurrency_alpha(3, 3))
    assert weaker.complex.complex.is_sub_complex_of(stronger.complex.complex)
    assert stronger.complex.complex.is_sub_complex_of(
        everything.complex.complex
    )


def test_ra_of_adversary_matches_alpha_route():
    adversary = figure5b_adversary()
    via_adversary = r_affine_of_adversary(adversary)
    via_alpha = r_affine(agreement_function_of(adversary))
    assert via_adversary.complex == via_alpha.complex


def test_ra_intersection_variant_is_smaller(alpha_1res):
    union = r_affine(alpha_1res, "union")
    inter = r_affine(alpha_1res, "intersection")
    assert inter.complex.complex.is_sub_complex_of(union.complex.complex)


def test_builder_guard_semantics(alpha_1of, chr2):
    builder = RABuilder(alpha_1of, "union")
    facet = next(iter(chr2.facets))
    rho = frozenset().union(*(v.carrier for v in facet))
    # The guard must be monotone: colors covered by CSM ∪ CSV escape it.
    csm = builder.structure.csm_colors(rho)
    if csm:
        color = next(iter(csm))
        assert not builder.guard_blocks_reliance(
            frozenset({color}), rho, rho
        )


def test_ra_defined_for_unfair_adversaries_too():
    """The construction is total; capture is only claimed for fair ones."""
    task = r_affine_of_adversary(unfair_example())
    assert task.complex.is_pure(2)


def test_ra_synchronized_runs_always_survive(ra_1of, ra_1res, ra_fig5b):
    """The fully synchronous 2-round run has no contention and belongs
    to every R_A."""
    from repro.runtime.iis import run_iis

    sync = run_iis(
        3, [(frozenset({0, 1, 2}),), (frozenset({0, 1, 2}),)]
    ).facet()
    for task in (ra_1of, ra_1res, ra_fig5b):
        assert sync in task.complex

"""Unit tests for the shared-memory objects."""

import pytest

from repro.runtime.memory import Register, SharedMemory, SnapshotArray


def test_register_read_write():
    reg = Register("r", initial=0)
    assert reg.read() == 0
    reg.write(5)
    assert reg.read() == 5
    assert reg.peek() == 5


def test_register_trace():
    reg = Register("r")
    reg.write(1)
    reg.read()
    assert reg.trace == [("write", 1), ("read", 1)]


def test_snapshot_array_update_scan():
    array = SnapshotArray("a", 3, initial=None)
    array.update(1, "x")
    assert array.scan() == (None, "x", None)


def test_snapshot_array_bounds():
    array = SnapshotArray("a", 2)
    with pytest.raises(IndexError):
        array.update(2, "x")


def test_snapshot_array_read_cell():
    array = SnapshotArray("a", 2)
    array.update(0, 7)
    assert array.read(0) == 7
    assert array.read(1) is None


def test_snapshot_returns_immutable_copy():
    array = SnapshotArray("a", 2)
    view = array.scan()
    array.update(0, "new")
    assert view == (None, None)


def test_snapshot_trace_records_ops():
    array = SnapshotArray("a", 2)
    array.update(0, 1)
    array.scan()
    kinds = [entry[0] for entry in array.trace]
    assert kinds == ["update", "scan"]


def test_shared_memory_namespacing():
    memory = SharedMemory(3)
    a = memory.snapshot_array("A")
    assert memory.snapshot_array("A") is a
    r = memory.register("R", initial=9)
    assert memory.register("R") is r
    assert "A" in memory
    assert memory["A"] is a


def test_shared_memory_sizes_arrays():
    memory = SharedMemory(4)
    assert memory.snapshot_array("A").n == 4

"""Tests for the fair-model inclusion order (landscape lattice)."""

import networkx as nx
import pytest

from repro.analysis.model_order import (
    check_inclusion_respects_power,
    hasse_diagram,
    inclusion_order,
    longest_chain,
    maximal_antichain_size,
    model_classes,
    summarize_order,
)


@pytest.fixture(scope="module")
def classes():
    return model_classes(3)


@pytest.fixture(scope="module")
def order(classes):
    return inclusion_order(classes)


def test_class_count(classes):
    assert len(classes) == 37


def test_members_partition_fair_adversaries(classes):
    total = sum(len(c.members) for c in classes)
    assert total == 43


def test_facet_extremes(classes):
    facets = [c.facets for c in classes]
    assert min(facets) == 73  # R_A(1-OF) is the smallest
    assert max(facets) == 169  # wait-free is the largest


def test_order_is_a_dag(order):
    assert nx.is_directed_acyclic_graph(order)


def test_wait_free_is_top(classes, order):
    top = max(range(len(classes)), key=lambda i: classes[i].facets)
    closure = nx.transitive_closure(order)
    for i in range(len(classes)):
        if i != top:
            assert closure.has_edge(i, top) or not classes[
                i
            ].task.complex.complex.is_sub_complex_of(
                classes[top].task.complex.complex
            )
    # Everything is a sub-complex of Chr² s:
    assert all(
        classes[i].task.complex.complex.is_sub_complex_of(
            classes[top].task.complex.complex
        )
        for i in range(len(classes))
    )


def test_inclusion_respects_power(classes, order):
    closure = nx.transitive_closure(order)
    assert check_inclusion_respects_power(classes, closure) is None


def test_hasse_is_reduction(order):
    hasse = hasse_diagram(order)
    assert hasse.number_of_edges() <= order.number_of_edges()
    assert nx.transitive_closure(hasse).edges == nx.transitive_closure(
        order
    ).edges


def test_longest_chain(order):
    chain = longest_chain(order)
    assert len(chain) == 3


def test_antichain(order):
    assert maximal_antichain_size(order) == 18


def test_summary_values():
    summary = summarize_order(3)
    assert summary.classes == 37
    assert summary.power_respected
    assert summary.comparable_pairs == 102
    assert summary.hasse_edges == 84

"""Tests for the repro.sim runtime, fault plans, and protocol library."""

import json

import pytest

from repro.adversaries import from_live_sets
from repro.adversaries.catalogue import catalogue_by_name
from repro.protocols.commit_adopt import (
    check_commit_adopt_outputs,
    commit_adopt_protocol,
)
from repro.protocols.safe_agreement import propose_then_read
from repro.runtime.scheduler import ExecutionPlan, run_plan
from repro.sim import (
    AnyGuard,
    BoscoWeakAgreement,
    FaultPlan,
    HittingSetConsensus,
    ReliableBroadcast,
    ReplayChooser,
    ReplayError,
    Runtime,
    ThresholdGuard,
    byzantine_emissions,
    byzantine_plans,
    byzantine_regime_ok,
    crash_plans_from_adversary,
    eager_chooser,
    events_from_trace,
    explore,
    isolate_chooser,
    random_chooser,
    trace_of,
)


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
def test_threshold_guard_counts_distinct_senders():
    guard = ThresholdGuard((0, "echo"), 2)
    assert not guard.satisfied({})
    assert not guard.satisfied({(0, "echo"): {1: "a"}})
    assert guard.satisfied({(0, "echo"): {1: "a", 2: "b"}})


def test_threshold_guard_matching_counts_same_value_cohort():
    guard = ThresholdGuard((0, "echo"), 2, matching=True)
    assert not guard.satisfied({(0, "echo"): {1: "a", 2: "b"}})
    assert guard.satisfied({(0, "echo"): {1: "a", 2: "b", 3: "a"}})


def test_threshold_guard_senders_filter():
    guard = ThresholdGuard((0, "prop"), 1, senders=frozenset({0, 1}))
    assert not guard.satisfied({(0, "prop"): {2: "x"}})
    assert guard.satisfied({(0, "prop"): {1: "x"}})


def test_any_guard_is_a_disjunction():
    guard = AnyGuard(
        (
            ThresholdGuard((0, "a"), 1),
            ThresholdGuard((0, "b"), 1),
        )
    )
    assert guard.satisfied({(0, "b"): {0: "x"}})
    assert not guard.satisfied({(1, "a"): {0: "x"}})


# ----------------------------------------------------------------------
# Runtime basics
# ----------------------------------------------------------------------
def _make_factories(n, process):
    return {pid: (lambda _pid, p=pid: process(p, n)) for pid in range(n)}


def _echo_process(pid, n):
    yield ("broadcast", 0, "val", pid)
    bag = yield ("await", ThresholdGuard((0, "val"), n))
    return sorted(bag[(0, "val")].values())


def test_fault_free_run_decides_everywhere():
    n = 3
    runtime = Runtime(n, _make_factories(n, _echo_process))
    run = runtime.run(eager_chooser())
    assert run.blocked == []
    assert run.crashed == []
    assert set(run.decisions) == {0, 1, 2}
    assert all(value == [0, 1, 2] for value in run.decisions.values())
    # n broadcasts to n receivers each.
    assert run.deliveries == n * n


def test_crash_allowance_yields_partial_broadcast():
    n = 3
    # Process 0 may send exactly one point-to-point message: its
    # broadcast reaches receiver 0 only (receivers in sorted order).
    runtime = Runtime(
        n,
        _make_factories(n, _echo_process),
        message_allowance={0: 1},
    )
    run = runtime.run(eager_chooser())
    assert run.crashed == [0]
    # Receivers 1 and 2 never see 0's value, so their n-threshold guard
    # can never be satisfied: they block (the deadlock detector fires).
    assert run.blocked == [1, 2]
    assert set(run.decisions) == set()


def test_allowance_zero_is_a_silent_crash():
    n = 3
    runtime = Runtime(
        n,
        _make_factories(n, _echo_process),
        message_allowance={2: 0},
    )
    run = runtime.run(eager_chooser())
    assert run.crashed == [2]
    assert run.blocked == [0, 1]


def test_input_quarantine_first_value_wins():
    def process(pid, n):
        bag = yield ("await", ThresholdGuard((0, "x"), 1))
        return bag[(0, "x")][9]

    runtime = Runtime(
        1,
        {0: lambda _pid: process(0, 1)},
        byzantine=frozenset({9}),
        injected=[(0, 0, "x", 9, "first"), (0, 0, "x", 9, "second")],
    )
    run = runtime.run(eager_chooser())
    assert run.decisions[0] == "first"


def test_omission_messages_are_droppable():
    n = 2

    def process(pid, n_procs):
        yield ("broadcast", 0, "val", pid)
        bag = yield ("await", ThresholdGuard((0, "val"), n_procs))
        return sorted(bag[(0, "val")].values())

    runtime = Runtime(
        n,
        _make_factories(n, process),
        omission=frozenset({1}),
    )
    # A chooser that drops whenever it can: process 1's messages all
    # vanish, so nobody (including 1 itself) assembles a full bag.
    def droppy(events):
        for index, event in enumerate(events):
            if event[0] == "drop":
                return index
        for index, event in enumerate(events):
            if event[0] == "deliver":
                return index
        return 0

    run = runtime.run(droppy)
    assert run.blocked == [0, 1]
    assert run.decisions == {}


def test_seed_determinism_byte_identical_traces():
    def run_once():
        n = 4
        runtime = Runtime(n, _make_factories(n, _echo_process))
        return runtime.run(random_chooser(42))

    first, second = run_once(), run_once()
    assert json.dumps(trace_of(first)) == json.dumps(trace_of(second))
    assert first.decisions == second.decisions


def test_different_seeds_reach_the_same_decisions():
    n = 3
    runs = []
    for seed in (1, 2, 3):
        runtime = Runtime(n, _make_factories(n, _echo_process))
        runs.append(runtime.run(random_chooser(seed)))
    assert all(run.decisions == runs[0].decisions for run in runs)


def test_replay_reproduces_a_run_exactly():
    n = 3
    runtime = Runtime(n, _make_factories(n, _echo_process))
    original = runtime.run(random_chooser(7))

    replayed = Runtime(n, _make_factories(n, _echo_process)).run(
        ReplayChooser(events_from_trace(trace_of(original)))
    )
    assert replayed.events == original.events
    assert replayed.decisions == original.decisions


def test_replay_rejects_a_tampered_trace():
    n = 3
    runtime = Runtime(n, _make_factories(n, _echo_process))
    original = runtime.run(random_chooser(7))
    trace = trace_of(original)
    trace[0] = ["deliver", 0, 99, "nope", 0]
    with pytest.raises(ReplayError):
        Runtime(n, _make_factories(n, _echo_process)).run(
            ReplayChooser(events_from_trace(trace))
        )


def test_isolate_chooser_feeds_quarantined_senders_first():
    # Two correct processes, one Byzantine equivocator: the isolate
    # schedule runs 0 on the Byzantine value before any honest traffic.
    def process(pid, n):
        bag = yield ("await", ThresholdGuard((0, "x"), 1))
        return sorted(bag[(0, "x")].items())

    runtime = Runtime(
        2,
        _make_factories(2, process),
        byzantine=frozenset({9}),
        injected=[(0, 0, "x", 9, "lie0"), (1, 0, "x", 9, "lie1")],
    )
    run = runtime.run(isolate_chooser([0, 1], frozenset({9})))
    assert run.decisions[0] == [(9, "lie0")]
    assert run.decisions[1] == [(9, "lie1")]


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
def test_fault_plan_json_round_trip():
    plan = FaultPlan(
        n=4,
        crashes=((3, 2),),
        omission=(1,),
        byzantine=((0, "equivocate"),),
        note="round-trip",
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert plan.faulty == {0, 1, 3}
    assert plan.correct == {2}


def test_byzantine_regime_bound():
    assert byzantine_regime_ok(4, 1)
    assert byzantine_regime_ok(7, 2)
    assert not byzantine_regime_ok(3, 1)
    assert not byzantine_regime_ok(6, 2)


def test_byzantine_emissions_strategies():
    slots = [(0, "prop")]
    domain = ["a", "b"]
    assert byzantine_emissions(9, "mute", slots, domain, 2) == []
    conform = byzantine_emissions(9, "conform", slots, domain, 2)
    assert [value for *_rest, value in conform] == ["a", "a"]
    equivocate = byzantine_emissions(9, "equivocate", slots, domain, 2)
    assert [value for *_rest, value in equivocate] == ["a", "b"]
    with pytest.raises(ValueError):
        byzantine_emissions(9, "creative", slots, domain, 2)


def test_crash_plans_cover_every_live_set():
    adversary = catalogue_by_name(3)["1-resilient"]
    plans = crash_plans_from_adversary(adversary, seed=0)
    live_sets = sorted(sorted(live) for live in adversary.live_sets)
    targeted = plans[: len(live_sets)]
    assert [sorted(plan.correct) for plan in targeted] == live_sets
    # Targeted plans crash the complement silently.
    for plan in targeted:
        assert all(allowance == 0 for _pid, allowance in plan.crashes)


def test_byzantine_plans_cover_every_strategy():
    plans = byzantine_plans(4, 1, seed=0)
    strategies = {strategy for plan in plans for _pid, strategy in plan.byzantine}
    assert strategies == {"mute", "equivocate", "conform"}
    assert all(len(plan.byzantine) == 1 for plan in plans)
    assert byzantine_plans(4, 0, seed=0) == [FaultPlan(n=4, note="fault-free")]


# ----------------------------------------------------------------------
# Protocol library under explore()
# ----------------------------------------------------------------------
def test_reliable_broadcast_safe_above_the_bound():
    protocol = ReliableBroadcast(4, 1)
    report = explore(protocol, byzantine_plans(4, 1, seed=0), 3, seed=0)
    assert report["pass"], report["first_violation"]


def test_reliable_broadcast_fails_at_n_equals_3t():
    protocol = ReliableBroadcast(3, 1)
    report = explore(protocol, byzantine_plans(3, 1, seed=0), 3, seed=0)
    assert not report["pass"]
    assert report["first_violation"] is not None


def test_bosco_equivocation_splits_at_n_equals_3t():
    protocol = BoscoWeakAgreement(3, 1)
    report = explore(protocol, byzantine_plans(3, 1, seed=0), 3, seed=0)
    assert not report["pass"]
    violations = report["first_violation"]["violations"]
    assert any("agreement" in line for line in violations)


def test_bosco_safe_above_the_bound():
    protocol = BoscoWeakAgreement(4, 1)
    report = explore(protocol, byzantine_plans(4, 1, seed=0), 3, seed=0)
    assert report["pass"], report["first_violation"]


def test_hitting_set_consensus_solvable_case_passes():
    adversary = catalogue_by_name(3)["1-resilient"]
    protocol = HittingSetConsensus(3, 2, adversary)
    plans = crash_plans_from_adversary(adversary, seed=0)
    report = explore(protocol, plans, 3, seed=0)
    assert report["pass"], report["first_violation"]


def test_hitting_set_consensus_unsolvable_case_deadlocks():
    adversary = catalogue_by_name(3)["wait-free"]
    protocol = HittingSetConsensus(3, 1, adversary)
    plans = crash_plans_from_adversary(adversary, seed=0)
    report = explore(protocol, plans, 3, seed=0)
    assert not report["pass"]
    violations = report["first_violation"]["violations"]
    assert any("liveness" in line for line in violations)


# ----------------------------------------------------------------------
# Cross-check against the shared-memory runtime (repro.runtime)
# ----------------------------------------------------------------------
def _execution_plan_of(fault_plan, seed):
    """Map a sim FaultPlan onto the shared-memory ExecutionPlan model.

    Silent crashes (allowance 0) become non-participants; partial
    crashes and omission faults become participants that crash after a
    few steps.
    """
    allowances = fault_plan.allowances()
    silent = {pid for pid, allowance in allowances.items() if allowance == 0}
    participants = frozenset(range(fault_plan.n)) - silent
    faulty = frozenset(
        pid for pid in participants if pid in fault_plan.faulty
    )
    crash_after = {
        pid: max(1, allowances.get(pid, 2)) for pid in faulty
    }
    return ExecutionPlan(
        participants=participants,
        faulty=faulty,
        crash_after_steps=crash_after,
        seed=seed,
    )


def test_commit_adopt_holds_under_sim_crash_plans():
    adversary = catalogue_by_name(3)["1-resilient"]
    proposals = {0: "x", 1: "y", 2: "x"}
    for index, fault_plan in enumerate(
        crash_plans_from_adversary(adversary, seed=3)
    ):
        plan = _execution_plan_of(fault_plan, seed=index)
        result = run_plan(
            lambda pid, memory: commit_adopt_protocol(
                pid, 3, memory, proposals[pid]
            ),
            3,
            plan,
        )
        decided = {
            pid: result.outputs[pid]
            for pid in plan.participants - plan.faulty
            if pid in result.outputs
        }
        relevant = {pid: proposals[pid] for pid in plan.participants}
        check_commit_adopt_outputs(relevant, decided)


def test_safe_agreement_holds_under_sim_crash_plans():
    adversary = catalogue_by_name(3)["1-resilient"]
    proposals = {0: "x", 1: "y", 2: "z"}
    live_set_plans = [
        plan
        for plan in crash_plans_from_adversary(adversary, seed=3)
        if plan.note.startswith("live-set")
    ]
    assert live_set_plans
    for index, fault_plan in enumerate(live_set_plans):
        # Silent crashes never enter the unsafe window, so every
        # participant must decide one common proposed value.
        participants = sorted(fault_plan.correct)
        plan = ExecutionPlan(
            participants=frozenset(participants),
            faulty=frozenset(),
            seed=index,
        )
        result = run_plan(
            lambda pid, memory: propose_then_read(
                pid, 3, memory, proposals[pid]
            ),
            3,
            plan,
        )
        values = {result.outputs[pid] for pid in participants}
        assert len(values) == 1
        assert values <= {proposals[pid] for pid in participants}


def test_sim_and_shared_memory_agree_on_benign_patterns():
    """The same participation patterns that let the sim's hitting-set
    protocol terminate also let commit-adopt terminate — the two
    runtimes agree on which crash patterns are benign."""
    adversary = from_live_sets(3, [{0, 1}, {0, 2}, {0, 1, 2}])
    plans = crash_plans_from_adversary(adversary, seed=0)
    protocol = HittingSetConsensus(3, 1, adversary)
    report = explore(protocol, plans, 2, seed=0)
    assert report["pass"]
    proposals = {0: "a", 1: "b", 2: "c"}
    for index, fault_plan in enumerate(plans):
        plan = _execution_plan_of(fault_plan, seed=index)
        result = run_plan(
            lambda pid, memory: commit_adopt_protocol(
                pid, 3, memory, proposals[pid]
            ),
            3,
            plan,
        )
        for pid in plan.participants - plan.faulty:
            assert pid in result.outputs

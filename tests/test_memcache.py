"""The in-memory LRU tier: bounds, accounting, backing fallback."""

from __future__ import annotations

import pytest

from repro.engine import MISS, ArtifactCache, Engine, NullCache, digest
from repro.service import MemCache
from repro.topology import chr_complex


def test_put_get_round_trip():
    cache = MemCache()
    key = digest("memcache-roundtrip")
    assert cache.get(key) is MISS
    cache.put(key, (1, 2, 3))
    assert cache.get(key) == (1, 2, 3)
    assert cache.hits == 1
    assert cache.misses == 1


def test_lru_eviction_order_and_accounting():
    cache = MemCache(max_entries=2)
    keys = [digest(("evict", i)) for i in range(3)]
    cache.put(keys[0], "a")
    cache.put(keys[1], "b")
    cache.get(keys[0])  # make key 0 most-recent; key 1 becomes LRU
    cache.put(keys[2], "c")  # evicts key 1
    assert cache.evictions == 1
    assert cache.get(keys[0]) == "a"
    assert cache.get(keys[2]) == "c"
    assert cache.get(keys[1]) is MISS
    assert len(cache) == 2


def test_backing_fallback_promotes_into_memory(tmp_path):
    backing = ArtifactCache(tmp_path)
    key = digest("promote-me")
    backing.put(key, chr_complex(3, 1))

    cache = MemCache(backing=ArtifactCache(tmp_path))
    assert cache.get(key) == chr_complex(3, 1)  # memory miss, disk hit
    assert cache.misses == 1 and cache.hits == 0
    assert cache.get(key) == chr_complex(3, 1)  # now resident
    assert cache.hits == 1
    assert cache.stats()["backing_hits"] == 1


def test_put_writes_through_to_backing(tmp_path):
    cache = MemCache(backing=ArtifactCache(tmp_path))
    key = digest("write-through")
    cache.put(key, [1, 2])
    assert ArtifactCache(tmp_path).get(key) == [1, 2]
    assert cache.persistent


def test_clear_drops_memory_not_backing(tmp_path):
    cache = MemCache(backing=ArtifactCache(tmp_path))
    key = digest("clear-mem")
    cache.put(key, "kept")
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.get(key) == "kept"  # refilled from disk


def test_corrupt_backing_entry_is_a_full_miss_and_recovers(tmp_path):
    backing = ArtifactCache(tmp_path)
    cache = MemCache(backing=backing)
    key = digest("corrupt-backing")
    backing.put(key, (1, 2))
    backing._path(key).write_text('["tuple",[1', encoding="utf-8")  # truncated
    assert cache.get(key) is MISS
    cache.put(key, (1, 2))
    assert cache.get(key) == (1, 2)


def test_stats_shape():
    cache = MemCache(backing=NullCache(), max_entries=4)
    cache.get(digest("nothing"))
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.0
    assert stats["backing_persistent"] is False
    assert stats["max_entries"] == 4


def test_engine_runs_against_memcache_tier(tmp_path, ra_1of):
    """A MemCache simply is the engine's cache: hits skip the executor."""
    from repro.tasks.set_consensus import set_consensus_task

    cache = MemCache(backing=ArtifactCache(tmp_path))
    engine = Engine(cache=cache)
    task = set_consensus_task(3, 2)
    first = engine.solve_many([(ra_1of, task, None)])
    again = engine.solve_many([(ra_1of, task, None)])
    assert again == first
    assert cache.hits == 1  # second call answered from memory

    # A fresh process (fresh MemCache) falls back to the disk tier.
    rewarmed = MemCache(backing=ArtifactCache(tmp_path))
    assert Engine(cache=rewarmed).solve_many([(ra_1of, task, None)]) == first
    assert rewarmed.stats()["backing_hits"] == 1


def test_max_entries_must_be_positive():
    with pytest.raises(ValueError):
        MemCache(max_entries=0)

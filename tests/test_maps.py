"""Unit tests for repro.topology.maps."""

import pytest

from repro.topology.complex import SimplicialComplex
from repro.topology.maps import (
    CarrierMap,
    SimplicialMap,
    identity_map,
)


@pytest.fixture
def square_path():
    """A path 0-1-2 and its collapse target, an edge a-b."""
    domain = SimplicialComplex([{0, 1}, {1, 2}])
    codomain = SimplicialComplex([{"a", "b"}])
    return domain, codomain


def test_simplicial_map_valid(square_path):
    domain, codomain = square_path
    f = SimplicialMap({0: "a", 1: "b", 2: "a"}, domain, codomain)
    assert f.image({0, 1}) == frozenset({"a", "b"})


def test_simplicial_map_rejects_non_simplicial():
    domain = SimplicialComplex([{0, 1}])
    codomain = SimplicialComplex([{"a"}, {"b"}])  # no edge a-b
    with pytest.raises(ValueError):
        SimplicialMap({0: "a", 1: "b"}, domain, codomain)


def test_simplicial_map_rejects_missing_vertices(square_path):
    domain, codomain = square_path
    with pytest.raises(ValueError):
        SimplicialMap({0: "a"}, domain, codomain)


def test_collapsing_detected(square_path):
    domain, codomain = square_path
    f = SimplicialMap(
        {0: "a", 1: "a", 2: "a"}, domain, codomain
    )
    assert not f.is_non_collapsing()
    g = SimplicialMap({0: "a", 1: "b", 2: "a"}, domain, codomain)
    assert g.is_non_collapsing()


def test_chromatic_map_on_subdivision(chr1, s3):
    # Color-preserving collapse Chr s -> s: send (c, t) to c.
    f = SimplicialMap(
        {v: v.color for v in chr1.vertices}, chr1.complex, s3.complex
    )
    assert f.is_chromatic()


def test_compose(square_path):
    domain, codomain = square_path
    f = SimplicialMap({0: "a", 1: "b", 2: "a"}, domain, codomain)
    g = SimplicialMap({"a": "a", "b": "b"}, codomain, codomain)
    composed = g.compose(f)
    assert composed(0) == "a"
    assert composed(2) == "a"


def test_identity_map(chr1):
    ident = identity_map(chr1.complex)
    assert ident.is_non_collapsing()
    for v in chr1.vertices:
        assert ident(v) == v


def test_carrier_map_monotone():
    domain = SimplicialComplex([{0, 1, 2}])
    target = SimplicialComplex([{0, 1, 2}])

    def rule(sigma):
        return SimplicialComplex([sigma])

    cm = CarrierMap(rule, domain)
    assert cm.is_monotone()


def test_carrier_map_non_monotone_detected():
    domain = SimplicialComplex([{0, 1}])
    flip = {
        frozenset({0}): SimplicialComplex([{0, 1}]),
        frozenset({1}): SimplicialComplex([{1}]),
        frozenset({0, 1}): SimplicialComplex([{1}]),
    }
    cm = CarrierMap(lambda sigma: flip[sigma], domain)
    assert not cm.is_monotone()


def test_carrier_map_carries():
    domain = SimplicialComplex([{0, 1}])
    codomain = SimplicialComplex([{"a", "b"}])
    cm = CarrierMap(lambda sigma: codomain, domain)
    f = SimplicialMap({0: "a", 1: "b"}, domain, codomain)
    assert cm.carries(f)


def test_carrier_map_rejects_uncarried():
    domain = SimplicialComplex([{0, 1}])
    codomain = SimplicialComplex([{"a", "b"}])
    only_a = SimplicialComplex([{"a"}])
    cm = CarrierMap(lambda sigma: only_a, domain)
    f = SimplicialMap({0: "a", 1: "b"}, domain, codomain)
    assert not cm.carries(f)

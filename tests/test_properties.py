"""Hypothesis property tests on the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.chromatic import ChromaticComplex, chi, is_rainbow
from repro.topology.complex import SimplicialComplex
from repro.topology.enumeration import fubini_number
from repro.topology.simplex import faces
from repro.topology.subdivision import (
    carrier,
    carrier_in_s,
    chromatic_subdivision,
    subdivide_simplex,
)


@st.composite
def random_complexes(draw):
    """A random simplicial complex over vertices 0..5."""
    n_facets = draw(st.integers(min_value=1, max_value=6))
    facets = [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=5),
                    min_size=1,
                    max_size=4,
                )
            )
        )
        for _ in range(n_facets)
    ]
    return SimplicialComplex(facets)


@st.composite
def random_chromatic_complexes(draw):
    """A random chromatic complex: rainbow facets over processes 0..3."""
    n_facets = draw(st.integers(min_value=1, max_value=5))
    facets = []
    for _ in range(n_facets):
        colors = draw(
            st.sets(
                st.integers(min_value=0, max_value=3),
                min_size=1,
                max_size=3,
            )
        )
        facets.append(frozenset(colors))
    return ChromaticComplex(facets)


@given(random_complexes())
@settings(max_examples=80, deadline=None)
def test_simplices_downward_closed(K):
    for sigma in K.simplices:
        for face in faces(sigma):
            assert face in K.simplices


@given(random_complexes())
@settings(max_examples=80, deadline=None)
def test_facets_are_maximal(K):
    for facet in K.facets:
        for other in K.facets:
            assert not facet < other


@given(random_complexes())
@settings(max_examples=80, deadline=None)
def test_f_vector_sums_to_simplex_count(K):
    assert sum(K.f_vector()) == len(K.simplices)


@given(random_complexes(), st.integers(min_value=-1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_skeleton_is_sub_complex(K, k):
    skeleton = K.skeleton(k)
    assert skeleton.is_sub_complex_of(K)
    assert skeleton.dimension <= max(k, -1)


@given(random_complexes())
@settings(max_examples=60, deadline=None)
def test_pure_complement_avoids_targets(K):
    targets = [next(iter(K.facets))]
    targets = [frozenset(list(targets[0])[:1])]  # a vertex of a facet
    pc = K.pure_complement(targets)
    for sigma in pc.simplices:
        assert not any(frozenset(t) <= sigma for t in targets)
    assert pc.is_pure()


@given(random_complexes())
@settings(max_examples=60, deadline=None)
def test_star_contains_closure_members(K):
    vertex = next(iter(K.vertices))
    star = K.star([{vertex}])
    assert frozenset({vertex}) in star
    for sigma in star:
        assert any(frozenset({vertex}) <= face for face in faces(sigma))


@given(random_complexes())
@settings(max_examples=60, deadline=None)
def test_link_joins_back_into_complex(K):
    vertex = next(iter(K.vertices))
    link = K.link({vertex})
    for sigma in link.simplices:
        assert sigma | {vertex} in K


@given(random_complexes())
@settings(max_examples=40, deadline=None)
def test_union_is_upper_bound(K):
    other = SimplicialComplex([{9, 10}])
    union = K.union(other)
    assert K.is_sub_complex_of(union)
    assert other.is_sub_complex_of(union)


@given(random_chromatic_complexes())
@settings(max_examples=40, deadline=None)
def test_subdivision_facet_counts_follow_fubini(K):
    sub = chromatic_subdivision(K)
    # Facets of Chr K: one per (facet of K, ordered partition) pair;
    # distinct pairs give distinct facets.
    expected = sum(fubini_number(len(facet)) for facet in K.facets)
    assert len(sub.facets) == expected


@given(random_chromatic_complexes())
@settings(max_examples=40, deadline=None)
def test_subdivision_preserves_colors(K):
    sub = chromatic_subdivision(K)
    assert sub.colors() == K.colors()
    for facet in sub.facets:
        assert is_rainbow(facet)


@given(random_chromatic_complexes())
@settings(max_examples=40, deadline=None)
def test_subdivision_carriers_are_simplices_of_base(K):
    sub = chromatic_subdivision(K)
    for facet in sub.facets:
        assert carrier(facet) in K


@given(st.sets(st.integers(min_value=0, max_value=4), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_subdivide_simplex_carrier_is_whole_simplex(colors):
    sigma = frozenset(colors)
    for facet in subdivide_simplex(sigma):
        assert carrier(facet) == sigma
        assert chi(facet) == sigma


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=0, max_value=168))
@settings(max_examples=60, deadline=None)
def test_carrier_in_s_monotone_on_faces(n, index):
    from repro.topology.subdivision import chr_complex

    chr2 = chr_complex(n, 2)
    facets = sorted(chr2.facets, key=repr)
    facet = facets[index % len(facets)]
    whole = carrier_in_s(facet)
    for vertex in facet:
        assert carrier_in_s([vertex]) <= whole

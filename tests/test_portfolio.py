"""Tests for portfolio racing — ``WorkerPool.race`` and the engine kind.

The load-bearing guarantees:

* the first lane to resolve **without error** wins; losing lanes are
  cancelled (``error="cancelled"``) and their workers reclaimed, with
  exactly-once verdict delivery even when a racing worker is SIGKILLed
  mid-race;
* a race in which no lane succeeds falls back to lane 0 — the caller's
  canonical kernel — so error/budget semantics stay deterministic;
* the ``portfolio`` job kind returns ``(mapping, nodes, kernel)`` on
  both paths: raced across workers on a pooled engine, degenerate
  canonical-lane execution sequentially, with verdicts that match the
  plain solver and witnesses that pass the independent verifier;
* portfolio cache keys are kernel-normalized, so engines configured
  with different default kernels share cached portfolio values.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core import full_affine_task
from repro.engine import Engine, JobSpec
from repro.engine.cache import ArtifactCache
from repro.solver import PORTFOLIO_KERNELS, SolveRequest, portfolio_requests
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import SearchBudgetExceeded, verify_carried_map
from repro.workers.pool import WorkerPool


@pytest.fixture(scope="session")
def wf_affine():
    return full_affine_task(3, 1)


# --------------------------------------------------------- pool-level race
def test_race_first_ok_wins_and_losers_cancel():
    with WorkerPool(3) as pool:
        result = pool.race(
            [
                JobSpec("sleep", (0.05, "fast")),
                JobSpec("sleep", (5.0, "slow-a")),
                JobSpec("sleep", (5.0, "slow-b")),
            ]
        )
        assert result.ok and result.value == "fast" and result.index == 0
        stats = pool.stats()
        assert stats["races"] == 1
        assert stats["race_cancelled"] == 2
        assert stats["alive"] == 3
        # Losers were mid-sleep, so their workers were kill-restarted.
        assert stats["worker_restarts"] == 2
        # The pool survives the reclaim: a normal batch still runs.
        batch = pool.run_batch(
            [(i, JobSpec("sleep", (0.0, i))) for i in range(3)]
        )
        assert [r.value for r in batch] == [0, 1, 2]


def test_race_winner_is_by_speed_not_lane_order():
    with WorkerPool(2) as pool:
        result = pool.race(
            [
                JobSpec("sleep", (5.0, "slow")),
                JobSpec("sleep", (0.05, "quick")),
            ]
        )
        assert result.ok and result.value == "quick" and result.index == 1


def test_race_with_no_winner_returns_canonical_lane():
    with WorkerPool(2) as pool:
        result = pool.race(
            [
                JobSpec("no-such-kind", ("a",)),
                JobSpec("no-such-kind", ("b",)),
            ]
        )
        assert not result.ok and result.index == 0


def test_race_exactly_once_under_worker_kill():
    """SIGKILL a losing lane's worker mid-race: the race still settles,
    every lane resolves exactly once, and no ticket leaks."""
    with WorkerPool(3) as pool:
        pool.start()
        pids = pool.pids()
        # On a fresh (idle) pool lane i dispatches to worker i, so
        # pids[1] is running the first losing lane.
        killer = threading.Timer(0.15, os.kill, (pids[1], signal.SIGKILL))
        killer.start()
        try:
            result = pool.race(
                [
                    JobSpec("sleep", (0.7, "win")),
                    JobSpec("sleep", (10.0, "lose-a")),
                    JobSpec("sleep", (10.0, "lose-b")),
                ]
            )
        finally:
            killer.cancel()
        assert result.ok and result.value == "win" and result.index == 0
        stats = pool.stats()
        assert stats["worker_restarts"] >= 1
        assert stats["race_cancelled"] == 2
        # Exactly-once: three lanes, three resolutions, no stragglers.
        assert stats["completed"] == 3
        assert pool._unresolved == 0 and not pool._tickets
        assert stats["alive"] == 3


# ----------------------------------------------------- the portfolio lanes
def test_portfolio_requests_fan_out(wf_affine):
    request = SolveRequest(
        affine=wf_affine, task=set_consensus_task(3, 2), kernel="fc"
    )
    lanes = portfolio_requests(request)
    assert tuple(lane.kernel for lane in lanes) == PORTFOLIO_KERNELS
    assert all(lane.resume is None for lane in lanes)


# -------------------------------------------------- engine job kind: solo
def test_portfolio_sequential_degenerate(wf_affine):
    task = set_consensus_task(3, 3)
    with Engine(jobs=1) as engine:
        result = engine.portfolio(wf_affine, task)
        assert result.solvable and result.kernel == PORTFOLIO_KERNELS[0]
        assert verify_carried_map(wf_affine, task, result.mapping)

        refuted = engine.portfolio(wf_affine, set_consensus_task(3, 2))
        assert not refuted.solvable and refuted.mapping is None
        assert refuted.nodes > 0


# ------------------------------------------------- engine job kind: raced
def test_portfolio_races_on_the_pool(wf_affine):
    tasks = [set_consensus_task(3, k) for k in (1, 2, 3)]
    with Engine(jobs=3) as engine:
        triples = engine.portfolio_many(
            [SolveRequest(affine=wf_affine, task=task) for task in tasks]
        )
        assert [mapping is not None for mapping, _, _ in triples] == [
            False,
            False,
            True,
        ]
        for (mapping, nodes, kernel), task in zip(triples, tasks):
            assert kernel in PORTFOLIO_KERNELS
            assert nodes > 0
            if mapping is not None:
                assert verify_carried_map(wf_affine, task, mapping)
        stats = engine.worker_stats()
        assert stats["races"] == len(tasks)


def test_portfolio_budget_surfaces_without_split_retry(wf_affine):
    task = set_consensus_task(3, 2)
    for jobs in (1, 2):
        with Engine(jobs=jobs) as engine:
            with pytest.raises(SearchBudgetExceeded):
                engine.portfolio(wf_affine, task, budget=5)


def test_portfolio_cache_key_is_kernel_normalized(tmp_path, wf_affine):
    task = set_consensus_task(3, 2)
    query = (wf_affine, task, None)
    with Engine(jobs=1, cache=ArtifactCache(tmp_path)) as engine:
        first = engine.portfolio_many([query])
    cache = ArtifactCache(tmp_path)
    with Engine(jobs=1, cache=cache, kernel="fc") as engine:
        # A different engine default kernel still hits the same entry.
        assert engine.portfolio_many([query]) == first
    assert cache.hits == 1


def test_cli_batch_portfolio(capsys):
    from repro.cli import main

    assert main(["batch", "--only", "solve", "--portfolio", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "winning kernels" in out
    assert "min k-set consensus" in out

"""Unit tests for View1 / View2 (Section 4)."""

import pytest

from repro.core.views import (
    view1,
    view2,
    view2_colors,
    views,
    witnessed_participation,
)
from repro.runtime.iis import run_iis
from repro.topology.chromatic import ChrVertex


def make_vertex(first, second):
    """Vertex of Chr² s for the 3-process run (first, second)."""
    execution = run_iis(3, [first, second])
    return execution


def test_views_of_reversed_run():
    # Round 1: {1}, {0}, {2}; round 2: {2}, {0}, {1} (fully reversed).
    execution = run_iis(
        3,
        [
            (frozenset({1}), frozenset({0}), frozenset({2})),
            (frozenset({2}), frozenset({0}), frozenset({1})),
        ],
    )
    v1 = execution.vertex_of(1)
    assert view1(v1) == frozenset({1})
    assert view2_colors(v1) == frozenset({0, 1, 2})

    v2 = execution.vertex_of(2)
    assert view1(v2) == frozenset({0, 1, 2})
    assert view2_colors(v2) == frozenset({2})


def test_view2_is_carrier():
    execution = run_iis(
        3,
        [
            (frozenset({0, 1, 2}),),
            (frozenset({0}), frozenset({1, 2})),
        ],
    )
    v0 = execution.vertex_of(0)
    assert view2(v0) == v0.carrier
    assert view2_colors(v0) == frozenset({0})


def test_views_pair_helper(chr2):
    for v in list(chr2.vertices)[:20]:
        first, second = views(v)
        assert first == view1(v)
        assert second == view2(v)


def test_view1_within_witnessed(chr2):
    for v in chr2.vertices:
        assert view1(v) <= witnessed_participation(v)


def test_witnessed_participation_synchronous():
    execution = run_iis(
        3, [(frozenset({0, 1, 2}),), (frozenset({0, 1, 2}),)]
    )
    for pid in range(3):
        assert witnessed_participation(execution.vertex_of(pid)) == frozenset(
            {0, 1, 2}
        )


def test_view_accessors_reject_base_vertices():
    with pytest.raises(TypeError):
        view2(0)
    shallow = ChrVertex(0, frozenset({0, 1}))  # depth-1 vertex
    with pytest.raises(TypeError):
        view1(shallow)


def test_view1_sizes_span_range(chr2):
    sizes = {len(view1(v)) for v in chr2.vertices}
    assert sizes == {1, 2, 3}

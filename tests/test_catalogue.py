"""Tests for the adversary catalogue (Figure 2 regions)."""


from repro.adversaries.catalogue import (
    build_catalogue,
    catalogue_by_name,
    figure5b_adversary,
    unfair_example,
)
from repro.adversaries.fairness import is_fair
from repro.adversaries.setcon import csize, setcon


def test_catalogue_names_unique():
    entries = build_catalogue(3)
    names = [entry.name for entry in entries]
    assert len(names) == len(set(names))


def test_catalogue_by_name_roundtrip():
    entries = build_catalogue(3)
    mapping = catalogue_by_name(3)
    assert len(mapping) == len(entries)


def test_figure5b_structure():
    adversary = figure5b_adversary()
    assert adversary.is_superset_closed()
    assert not adversary.is_symmetric()
    assert is_fair(adversary)
    assert setcon(adversary) == 2
    assert csize(adversary) == 2


def test_figure5b_generators_live():
    adversary = figure5b_adversary()
    assert {1} in adversary
    assert {0, 2} in adversary
    assert {0} not in adversary
    assert {2} not in adversary


def test_unfair_example_region():
    adversary = unfair_example()
    assert not is_fair(adversary)
    assert not adversary.is_superset_closed()
    assert not adversary.is_symmetric()


def test_catalogue_covers_every_figure2_region():
    """Figure 2's regions are all inhabited by the n=3 catalogue."""
    entries = build_catalogue(3)
    regions = set()
    for entry in entries:
        a = entry.adversary
        regions.add(
            (
                a.is_superset_closed(),
                a.is_symmetric(),
                is_fair(a),
            )
        )
    # superset-closed & symmetric (t-resilient / wait-free)
    assert (True, True, True) in regions
    # superset-closed only (figure-5b)
    assert (True, False, True) in regions
    # symmetric only (k-obstruction-free)
    assert (False, True, True) in regions
    # outside fairness entirely
    assert any(not fair for (_, _, fair) in regions)


def test_wait_free_equals_maximal_resilience():
    mapping = catalogue_by_name(3)
    assert (
        mapping["wait-free"].live_sets
        == mapping["2-resilient(=wait-free)"].live_sets
    )


def test_catalogue_n4_builds():
    entries = build_catalogue(4)
    assert {entry.name for entry in entries} >= {
        "wait-free",
        "1-resilient",
        "1-obstruction-free",
    }
    for entry in entries:
        assert entry.adversary.n == 4

"""Tests for the figure-drawing geometry export."""

import json
from math import sqrt


from repro.adversaries import k_concurrency_alpha
from repro.analysis.figure_geometry import (
    TRIANGLE,
    all_drawings,
    complex_drawing,
    figure1a_drawing,
    figure4c_drawing,
    figure5_drawing,
    figure6_drawing,
    figure7_drawing,
    planar_position,
)
from repro.topology.chromatic import ChrVertex


def test_corners_at_triangle_vertices():
    for pid in range(3):
        assert planar_position(pid) == TRIANGLE[pid]


def test_solo_vertex_at_corner():
    solo = ChrVertex(2, frozenset({2}))
    assert planar_position(solo) == TRIANGLE[2]


def test_central_vertex_inside_triangle():
    center = ChrVertex(0, frozenset({0, 1, 2}))
    x, y = planar_position(center)
    assert 0 < x < 1 and 0 < y < sqrt(3) / 2


def test_positions_distinct(chr2):
    drawing = complex_drawing(chr2)
    positions = {
        tuple(round(c, 9) for c in data["position"])
        for data in drawing["vertices"].values()
    }
    assert len(positions) == len(chr2.vertices)


def test_figure1a_counts():
    drawing = figure1a_drawing()
    assert len(drawing["vertices"]) == 12
    assert len(drawing["facets"]) == 13


def test_figure4c_contending_count():
    drawing = figure4c_drawing()
    assert len(drawing["contending"]) == 78 + 6


def test_figure5a_critical_count():
    drawing = figure5_drawing(k_concurrency_alpha(3, 1))
    assert len(drawing["critical"]) == 7


def test_figure6_levels_cover_complex():
    drawing = figure6_drawing(k_concurrency_alpha(3, 1))
    assert len(drawing["levels"]) == 49  # simplices of Chr s
    assert {entry["level"] for entry in drawing["levels"]} == {0, 1}


def test_figure7_partition():
    drawing = figure7_drawing(k_concurrency_alpha(3, 1))
    assert len(drawing["kept_facets"]) == 73
    assert len(drawing["dropped_facets"]) == 169 - 73


def test_all_drawings_serializable():
    payload = json.dumps(all_drawings())
    assert "figure7b" in payload

"""Tests for the FACT decision procedure (repro.tasks.solvability)."""

import pytest

from repro.core import full_affine_task
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.simplex_agreement import affine_task_as_task
from repro.tasks.solvability import (
    MapSearch,
    SearchBudgetExceeded,
    find_carried_map,
    minimal_set_consensus,
    solves_set_consensus,
    verify_carried_map,
)


def test_n_set_consensus_always_solvable(chr1):
    task = full_affine_task(3, 1)
    assert solves_set_consensus(task, 3)


def test_wait_free_consensus_unsolvable():
    task = full_affine_task(3, 1)
    assert not solves_set_consensus(task, 1)


def test_wait_free_two_set_consensus_unsolvable_depth1():
    """Sperner at depth 1: no 2-set-consensus map out of Chr s."""
    task = full_affine_task(3, 1)
    assert not solves_set_consensus(task, 2)


def test_two_processes_consensus_unsolvable_even_at_depth2():
    task = full_affine_task(2, 2)
    assert not solves_set_consensus(task, 1)


def test_r1of_solves_consensus(ra_1of):
    assert solves_set_consensus(ra_1of, 1)


def test_minimal_set_consensus_matches_alpha(ra_1of, ra_2of, ra_1res, ra_fig5b):
    assert minimal_set_consensus(ra_1of) == 1
    assert minimal_set_consensus(ra_2of) == 2
    assert minimal_set_consensus(ra_1res) == 2
    assert minimal_set_consensus(ra_fig5b) == 2


def test_found_map_verifies(ra_1res):
    task = set_consensus_task(3, 2)
    mapping = find_carried_map(ra_1res, task)
    assert mapping is not None
    assert verify_carried_map(ra_1res, task, mapping)


def test_found_map_is_chromatic(ra_1of):
    task = set_consensus_task(3, 1)
    mapping = find_carried_map(ra_1of, task)
    for vertex, out in mapping.items():
        assert vertex.color == out.process


def test_verify_rejects_corrupted_map(ra_1res):
    from repro.tasks.task import OutputVertex

    task = set_consensus_task(3, 2)
    mapping = find_carried_map(ra_1res, task)
    vertex = next(iter(mapping))
    corrupted = dict(mapping)
    corrupted[vertex] = OutputVertex(
        (vertex.color + 1) % 3, corrupted[vertex].value
    )
    assert not verify_carried_map(ra_1res, task, corrupted)


def test_budget_exceeded_raises():
    task = full_affine_task(3, 1)
    search = MapSearch(task, set_consensus_task(3, 2))
    with pytest.raises(SearchBudgetExceeded):
        search.search(budget=3)


def test_nodes_explored_counted(ra_1of):
    search = MapSearch(ra_1of, set_consensus_task(3, 1))
    assert search.search() is not None
    assert search.nodes_explored > 0


def test_mismatched_n_rejected(ra_1of):
    with pytest.raises(ValueError):
        MapSearch(ra_1of, set_consensus_task(4, 1))


def test_affine_task_solves_itself(ra_1of):
    """Simplex agreement on L is solvable from L — in particular the
    identity assignment is a carried map."""
    from repro.tasks.task import OutputVertex

    task = affine_task_as_task(ra_1of)
    mapping = find_carried_map(ra_1of, task)
    assert mapping is not None
    assert verify_carried_map(ra_1of, task, mapping)
    identity = {
        v: OutputVertex(v.color, v) for v in ra_1of.complex.vertices
    }
    assert verify_carried_map(ra_1of, task, identity)


def test_solvability_monotone_in_subcomplex(ra_2of):
    """A sub-complex of R_{2-OF} solving 2-set consensus implies the
    bigger complex cannot get *harder*... checked via the instance:
    both R_A(2-OF) and R_{2-OF} solve exactly k=2."""
    from repro.core.rkof import r_k_obstruction_free

    rk = r_k_obstruction_free(3, 2)
    assert minimal_set_consensus(rk) == 2
    assert minimal_set_consensus(ra_2of) == 2

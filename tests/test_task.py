"""Unit tests for the task framework (repro.tasks.task)."""

import pytest

from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.task import OutputVertex, Task, output_complex_from_delta
from repro.topology.chromatic import color_of, standard_simplex


def test_output_vertex_color():
    out = OutputVertex(2, "value")
    assert out.color == 2
    assert color_of(out) == 2


def test_task_allowed_outputs_cached():
    task = set_consensus_task(3, 1)
    first = task.allowed_outputs({0, 1})
    assert task.allowed_outputs({0, 1}) is first


def test_task_permits():
    task = set_consensus_task(3, 1)
    good = frozenset({OutputVertex(0, 1), OutputVertex(1, 1)})
    bad = frozenset({OutputVertex(0, 0), OutputVertex(1, 1)})
    assert task.permits({0, 1}, good)
    assert not task.permits({0, 1}, bad)


def test_validate_passes_for_set_consensus():
    for k in (1, 2, 3):
        set_consensus_task(3, k).validate()


def test_validate_rejects_non_monotone():
    def delta(participants):
        if len(participants) == 1:
            return frozenset(
                {frozenset({OutputVertex(p, p) for p in participants})}
            )
        return frozenset()

    task = Task(
        2,
        standard_simplex(2),
        output_complex_from_delta(2, delta),
        delta,
        name="broken",
    )
    with pytest.raises(ValueError, match="monotone|full output"):
        task.validate()


def test_validate_rejects_miscolored_outputs():
    def delta(participants):
        # Emits outputs for a process outside the participants.
        return frozenset({frozenset({OutputVertex(1, 0)})})

    task = Task(
        2,
        standard_simplex(2),
        output_complex_from_delta(2, delta),
        delta,
        name="miscolored",
    )
    with pytest.raises(ValueError, match="colored outside"):
        task.validate()


def test_output_complex_from_delta_collects_union():
    def delta(participants):
        return frozenset(
            {frozenset({OutputVertex(p, "x") for p in participants})}
        )

    complex_ = output_complex_from_delta(2, delta)
    assert OutputVertex(0, "x") in complex_.vertices
    assert OutputVertex(1, "x") in complex_.vertices


def test_repr():
    assert "1-set-consensus" in repr(set_consensus_task(3, 1))

"""Unit tests for R_{k-OF} (Definition 6) and R_{t-res} (Saraph et al.)."""

import pytest

from repro.core.contention import is_contention_simplex
from repro.core.rkof import r_k_obstruction_free
from repro.core.rtres import r_t_resilient
from repro.core.views import witnessed_participation
from repro.topology.simplex import faces


# ----------------------------------------------------------------- R_{k-OF}
def test_r1of_facet_count(rkof_1):
    """Figure 7a's complex: 73 of the 169 facets survive at n=3."""
    assert len(rkof_1.complex.facets) == 73


def test_rkof_counts_increase_with_k():
    counts = [
        len(r_k_obstruction_free(3, k).complex.facets) for k in (1, 2, 3)
    ]
    assert counts == [73, 163, 169]
    assert counts == sorted(counts)


def test_rnof_is_everything(chr2):
    assert r_k_obstruction_free(3, 3).complex == chr2


def test_rkof_no_large_contention(rkof_1):
    for facet in rkof_1.complex.facets:
        for theta in faces(facet):
            if len(theta) >= 2:
                assert not is_contention_simplex(theta)


def test_r2of_excludes_exactly_the_contention_triangles(chr2):
    r2 = r_k_obstruction_free(3, 2)
    excluded = chr2.facets - r2.complex.facets
    assert len(excluded) == 6
    for facet in excluded:
        assert is_contention_simplex(facet)


def test_rkof_rejects_bad_k():
    with pytest.raises(ValueError):
        r_k_obstruction_free(3, 0)
    with pytest.raises(ValueError):
        r_k_obstruction_free(3, 4)


def test_rkof_is_pure(rkof_1):
    assert rkof_1.complex.is_pure(2)


# ----------------------------------------------------------------- R_{t-res}
def test_r1res_facet_count(rtres_1):
    """Figure 1b's complex: 142 of 169 facets at n=3, t=1."""
    assert len(rtres_1.complex.facets) == 142


def test_rtres_counts_increase_with_t():
    counts = [len(r_t_resilient(3, t).complex.facets) for t in (0, 1, 2)]
    assert counts == [97, 142, 169]


def test_wait_free_resilience_is_everything(chr2):
    assert r_t_resilient(3, 2).complex == chr2


def test_rtres_view_bound(rtres_1):
    for facet in rtres_1.complex.facets:
        for vertex in facet:
            assert len(witnessed_participation(vertex)) >= 2


def test_r0res_every_process_sees_everyone():
    r0 = r_t_resilient(3, 0)
    for facet in r0.complex.facets:
        for vertex in facet:
            assert witnessed_participation(vertex) == frozenset({0, 1, 2})


def test_rtres_rejects_bad_t():
    with pytest.raises(ValueError):
        r_t_resilient(3, 3)
    with pytest.raises(ValueError):
        r_t_resilient(3, -1)


def test_rtres_corner_exclusion(rtres_1, chr2):
    """Exactly the facets touching a corner (a solo-witness vertex) are
    removed — the '(n-t-1)-skeleton adjacency' of the paper."""
    excluded = chr2.facets - rtres_1.complex.facets
    for facet in excluded:
        assert any(
            len(witnessed_participation(v)) == 1 for v in facet
        )
    for facet in rtres_1.complex.facets:
        assert all(
            len(witnessed_participation(v)) >= 2 for v in facet
        )


@pytest.mark.slow
def test_rtres_n4_counts():
    r1 = r_t_resilient(4, 1)
    assert r1.complex.is_pure(3)
    assert len(r1.complex.facets) < 75 * 75

"""Tests for joins, cones, suspensions and spheres."""

import pytest

from repro.topology.complex import SimplicialComplex
from repro.topology.connectivity import betti_numbers, euler_characteristic
from repro.topology.constructions import (
    cone,
    disjoint_union,
    join,
    sphere,
    suspension,
)


def test_sphere_homology():
    assert betti_numbers(sphere(0)) == [2]
    assert betti_numbers(sphere(1)) == [1, 1]
    assert betti_numbers(sphere(2)) == [1, 0, 1]


def test_sphere_rejects_negative():
    with pytest.raises(ValueError):
        sphere(-1)


def test_join_of_spheres_is_sphere():
    """S^0 * S^0 is a circle (S^1)."""
    s0a = sphere(0, tag="a")
    s0b = sphere(0, tag="b")
    circle = join(s0a, s0b)
    assert betti_numbers(circle) == [1, 1]
    assert euler_characteristic(circle) == 0


def test_join_with_point_is_cone():
    point = SimplicialComplex([{"p"}])
    base = sphere(1, tag="x")
    joined = join(base, point)
    coned = cone(base, "p")
    assert joined == coned
    assert betti_numbers(coned) == [1, 0, 0]  # contractible


def test_join_requires_disjoint_vertices():
    K = SimplicialComplex([{"a"}])
    with pytest.raises(ValueError):
        join(K, K)


def test_join_with_empty_is_identity():
    K = sphere(1)
    assert join(K, SimplicialComplex([])) == K
    assert join(SimplicialComplex([]), K) == K


def test_cone_is_contractible():
    for base in (sphere(0), sphere(1), SimplicialComplex([{1, 2}, {2, 3}])):
        coned = cone(base, apex="apex")
        assert betti_numbers(coned)[0] == 1
        assert all(b == 0 for b in betti_numbers(coned)[1:])


def test_cone_over_empty_is_point():
    assert cone(SimplicialComplex([]), "a").f_vector() == [1]


def test_cone_rejects_used_apex():
    with pytest.raises(ValueError):
        cone(SimplicialComplex([{"a"}]), "a")


def test_suspension_of_sphere_is_sphere():
    """Susp(S^1) = S^2."""
    circle = sphere(1, tag="c")
    susp = suspension(circle)
    assert betti_numbers(susp) == [1, 0, 1]


def test_suspension_of_two_points():
    """Susp(S^0) = S^1."""
    susp = suspension(sphere(0, tag="p"))
    assert betti_numbers(susp) == [1, 1]


def test_suspension_pole_validation():
    with pytest.raises(ValueError):
        suspension(sphere(0), north="X", south="X")


def test_disjoint_union_betti_adds():
    a = sphere(1, tag="a")
    b = sphere(1, tag="b")
    both = disjoint_union(a, b)
    assert betti_numbers(both) == [2, 2]


def test_disjoint_union_requires_disjoint():
    K = sphere(0, tag="z")
    with pytest.raises(ValueError):
        disjoint_union(K, K)

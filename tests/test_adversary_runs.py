"""Raw A-model runs: Algorithm 1's safety beyond the α-model."""

import random


from repro.adversaries import (
    agreement_function_of,
    k_obstruction_free,
    t_resilient,
)
from repro.core import r_affine
from repro.runtime.adversary_runs import (
    adversary_compliant_plans,
    is_alpha_model_compliant,
    split_plans_by_alpha_compliance,
)
from repro.runtime.algorithm1 import run_algorithm1
from repro.runtime.scheduler import LivenessViolation


def test_plans_have_live_correct_sets():
    adversary = t_resilient(3, 1)
    rng = random.Random(0)
    for _ in range(50):
        plan = adversary_compliant_plans(adversary, rng)
        correct = plan.participants - plan.faulty
        assert correct in adversary


def test_t_resilient_plans_are_alpha_compliant():
    """For t-resilience the two models' run sets coincide on plans: at
    most t failures means at most alpha(P) - 1 among participants."""
    adversary = t_resilient(3, 1)
    alpha = agreement_function_of(adversary)
    inside, beyond = split_plans_by_alpha_compliance(
        adversary, alpha, count=80, seed=1
    )
    assert not beyond
    assert len(inside) == 80


def test_k_obstruction_free_exceeds_alpha_model():
    """k-OF adversaries allow more failures than Definition 3 does —
    the split must find genuinely beyond-α plans."""
    adversary = k_obstruction_free(3, 1)
    alpha = agreement_function_of(adversary)
    inside, beyond = split_plans_by_alpha_compliance(
        adversary, alpha, count=80, seed=2
    )
    assert beyond  # e.g. correct = one process, two crashed
    assert inside  # and solo-participation runs are fine


def test_algorithm1_safety_beyond_alpha_model():
    """Algorithm 1's outputs stay in R_A even on raw A-compliant runs
    that exceed the α-model's failure budget; only liveness may fail
    there (which run_algorithm1 reports as LivenessViolation)."""
    adversary = k_obstruction_free(3, 1)
    alpha = agreement_function_of(adversary)
    task = r_affine(alpha)
    _inside, beyond = split_plans_by_alpha_compliance(
        adversary, alpha, count=60, seed=3
    )
    assert beyond
    lively, blocked = 0, 0
    for plan in beyond[:20]:
        try:
            outcome = run_algorithm1(
                alpha, plan, task, max_steps=20_000
            )
        except LivenessViolation:
            blocked += 1
            continue
        lively += 1
        assert outcome.in_affine_task
    # No safety violation either way; both behaviors may occur.
    assert lively + blocked == len(beyond[:20])


def test_is_alpha_model_compliant_logic():
    from repro.runtime.scheduler import ExecutionPlan

    adversary = t_resilient(3, 1)
    alpha = agreement_function_of(adversary)
    plan = ExecutionPlan(
        participants=frozenset({0, 1, 2}), faulty=frozenset({0, 1})
    )
    assert not is_alpha_model_compliant(plan, alpha)
    plan2 = ExecutionPlan(
        participants=frozenset({0, 1, 2}), faulty=frozenset({0})
    )
    assert is_alpha_model_compliant(plan2, alpha)

"""Unit tests for repro.topology.geometry (realizations, volumes)."""

import numpy as np
import pytest

from repro.topology.chromatic import ChrVertex
from repro.topology.geometry import (
    barycentric_in_carrier,
    base_coordinates,
    facet_volumes,
    realize_complex,
    realize_vertex,
    simplex_volume,
    subdivision_volume_check,
)
from repro.topology.subdivision import chr_complex


def test_base_coordinates_unit_vectors():
    coords = base_coordinates(3)
    assert np.allclose(coords[0], [1, 0, 0])
    assert np.allclose(coords[2], [0, 0, 1])


def test_realize_base_vertex():
    assert np.allclose(realize_vertex(1, 3), [0, 1, 0])


def test_realize_central_vertex_is_barycenter():
    center = ChrVertex(0, frozenset({0, 1, 2}))
    point = realize_vertex(center, 3)
    # (1/5) e0 + (2/5) e1 + (2/5) e2
    assert np.allclose(point, [0.2, 0.4, 0.4])


def test_realize_solo_vertex_at_corner():
    solo = ChrVertex(1, frozenset({1}))
    assert np.allclose(realize_vertex(solo, 3), [0, 1, 0])


def test_realized_points_on_simplex_plane(chr2):
    coords = realize_complex(chr2, 3)
    for point in coords.values():
        assert np.isclose(point.sum(), 1.0)
        assert np.all(point >= -1e-12)


def test_vertices_lie_in_their_carriers(chr1):
    for v in chr1.vertices:
        assert barycentric_in_carrier(v, 3)


def test_distinct_vertices_realize_distinctly(chr1):
    coords = realize_complex(chr1, 3)
    points = [tuple(np.round(p, 9)) for p in coords.values()]
    assert len(set(points)) == len(points)


def test_simplex_volume_degenerate():
    assert simplex_volume(np.array([[1.0, 0.0, 0.0]])) == 0.0


def test_simplex_volume_unit_triangle():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    assert np.isclose(simplex_volume(points), 0.5)


def test_facet_volumes_positive(chr1):
    volumes = facet_volumes(chr1, 3)
    assert all(v > 0 for v in volumes.values())


@pytest.mark.parametrize("depth", [1, 2])
def test_subdivision_volumes_add_up(depth):
    K = chr_complex(3, depth)
    assert subdivision_volume_check(K, 3)


@pytest.mark.slow
def test_subdivision_volumes_add_up_n4():
    assert subdivision_volume_check(chr_complex(4, 1), 4)


def test_realize_rejects_unknown():
    with pytest.raises(TypeError):
        realize_vertex("zigzag", 3)

"""Unit tests for the cooperative scheduler and α-model plans."""

import random

import pytest

from repro.adversaries import t_resilience_alpha, wait_free_alpha
from repro.runtime.memory import SharedMemory
from repro.runtime.scheduler import (
    ExecutionPlan,
    LivenessViolation,
    ProtocolError,
    Scheduler,
    execute_operation,
    random_alpha_model_plan,
    run_plan,
)


def writer_protocol(pid, memory):
    array = memory.snapshot_array("A")
    yield ("update", array, pid)
    view = yield ("scan", array)
    return view


def test_scheduler_runs_protocols_to_completion():
    memory = SharedMemory(2)
    scheduler = Scheduler(
        {pid: writer_protocol(pid, memory) for pid in range(2)}
    )
    outputs = scheduler.run([0, 1, 0, 1, 0, 1])
    assert set(outputs) == {0, 1}


def test_interleaving_controls_visibility():
    memory = SharedMemory(2)
    scheduler = Scheduler(
        {pid: writer_protocol(pid, memory) for pid in range(2)}
    )
    # Process 0 runs completely before 1 starts.
    outputs = scheduler.run([0, 0, 0, 1, 1, 1])
    assert outputs[0] == (0, None)
    assert outputs[1] == (0, 1)


def test_step_on_finished_process_is_noop():
    memory = SharedMemory(1)
    scheduler = Scheduler({0: writer_protocol(0, memory)})
    scheduler.run([0] * 10)
    assert not scheduler.step(0)


def test_decided_set():
    memory = SharedMemory(2)
    scheduler = Scheduler(
        {pid: writer_protocol(pid, memory) for pid in range(2)}
    )
    scheduler.run([0, 0, 0])
    assert scheduler.decided_set() == frozenset({0})


def test_malformed_op_raises():
    def bad(pid, memory):
        yield "not a tuple"

    memory = SharedMemory(1)
    scheduler = Scheduler({0: bad(0, memory)})
    with pytest.raises(ProtocolError):
        scheduler.run([0, 0])


def test_unknown_op_raises():
    with pytest.raises(ProtocolError):
        execute_operation(("explode",), 0)


def test_register_ops():
    memory = SharedMemory(1)
    reg = memory.register("R")

    def proto(pid, mem):
        yield ("write", reg, 42)
        value = yield ("readreg", reg)
        return value

    scheduler = Scheduler({0: proto(0, memory)})
    outputs = scheduler.run([0, 0, 0])
    assert outputs[0] == 42


def test_random_alpha_model_plans_comply():
    alpha = t_resilience_alpha(3, 1)
    rng = random.Random(5)
    for _ in range(100):
        plan = random_alpha_model_plan(alpha, rng)
        assert alpha(plan.participants) >= 1
        assert plan.faulty <= plan.participants
        assert len(plan.faulty) <= alpha(plan.participants) - 1


def test_run_plan_executes_correct_processes():
    plan = ExecutionPlan(
        participants=frozenset({0, 1}),
        faulty=frozenset(),
        seed=1,
    )
    result = run_plan(writer_protocol, 2, plan)
    assert result.decided() == frozenset({0, 1})
    assert result.steps_taken > 0


def test_run_plan_detects_liveness_violation():
    def stuck(pid, memory):
        array = memory.snapshot_array("A")
        while True:
            yield ("scan", array)

    plan = ExecutionPlan(
        participants=frozenset({0}), faulty=frozenset(), seed=2
    )
    with pytest.raises(LivenessViolation):
        run_plan(stuck, 1, plan, max_steps=50)


def test_crashed_process_stops_stepping():
    def counter(pid, memory):
        array = memory.snapshot_array("A")
        for i in range(1000):
            yield ("update", array, i)
        return "done"

    plan = ExecutionPlan(
        participants=frozenset({0, 1}),
        faulty=frozenset({1}),
        crash_after_steps={1: 3},
        seed=3,
    )
    alpha = wait_free_alpha(2)
    result = run_plan(counter, 2, plan, max_steps=5000)
    assert 0 in result.outputs
    assert 1 not in result.outputs

"""Tests for the exhaustive adversary landscape (n = 3)."""

import pytest

from repro.adversaries import (
    is_fair,
    k_obstruction_free,
    setcon,
    t_resilient,
    wait_free,
)
from repro.analysis.landscape import (
    all_adversaries,
    alpha_signature,
    classify_all,
    fair_task_classes,
    summarize,
)


@pytest.fixture(scope="module")
def entries():
    return classify_all(3)


@pytest.fixture(scope="module")
def summary(entries):
    return summarize(entries)


def test_total_adversary_count(entries):
    # 2^7 - 1 non-empty collections of the 7 non-empty subsets.
    assert len(entries) == 127


def test_all_adversaries_distinct():
    adversaries = list(all_adversaries(3))
    assert len({a.live_sets for a in adversaries}) == len(adversaries)


def test_fair_count(entries, summary):
    assert summary.fair == 43
    assert summary.fair == sum(1 for e in entries if e.fair)


def test_structural_counts(summary):
    # 2^n - 1 antichains-as-upsets: superset-closed adversaries are in
    # bijection with non-empty downward... counted mechanically:
    assert summary.superset_closed == 18
    # symmetric adversaries = non-empty subsets of {1, 2, 3} sizes.
    assert summary.symmetric == 7


def test_power_histogram(summary):
    assert summary.power_histogram == {1: 63, 2: 63, 3: 1}
    # Only the wait-free adversary reaches power 3.
    assert sum(summary.power_histogram.values()) == 127


def test_only_wait_free_has_power_n(entries):
    top = [e for e in entries if e.power == 3]
    assert len(top) == 1
    assert top[0].adversary == wait_free(3)


def test_structural_implications(entries):
    for entry in entries:
        if entry.superset_closed or entry.symmetric:
            assert entry.fair


def test_known_members_present(entries):
    by_live_sets = {e.adversary.live_sets: e for e in entries}
    assert by_live_sets[t_resilient(3, 1).live_sets].fair
    assert by_live_sets[k_obstruction_free(3, 1).live_sets].fair


def test_distinct_alpha_count(summary):
    assert summary.distinct_alphas_fair == 37


def test_alpha_determines_affine_task_injectively(summary):
    """Observed: on the full fair landscape at n=3, distinct agreement
    functions yield distinct affine tasks."""
    assert summary.distinct_affine_tasks == summary.distinct_alphas_fair


def test_alpha_signature_stable():
    from repro.adversaries import agreement_function_of

    a = agreement_function_of(t_resilient(3, 1))
    b = agreement_function_of(t_resilient(3, 1))
    assert alpha_signature(a) == alpha_signature(b)


def test_fair_task_classes_partition():
    classes = fair_task_classes(3)
    members = [a for group in classes.values() for a in group]
    assert len(members) == 43
    assert all(is_fair(a) for a in members)


def test_task_class_members_share_power():
    """Adversaries in one R_A class have equal setcon — a consequence
    of Theorem 15."""
    for task, members in fair_task_classes(3).items():
        powers = {setcon(a) for a in members}
        assert len(powers) == 1

"""Unit tests for the iterated affine-model executor."""

import pytest

from repro.core import full_affine_task
from repro.runtime.affine_executor import (
    AffineModelExecutor,
    facet_to_round_partitions,
    scripted_chooser,
)


def states(n):
    return {pid: f"state-{pid}" for pid in range(n)}


def test_executor_requires_depth2():
    with pytest.raises(ValueError):
        AffineModelExecutor(full_affine_task(3, 1))


def test_iteration_views_have_consistent_structure(ra_1res):
    executor = AffineModelExecutor(ra_1res, seed=4)
    views = executor.run_iteration(states(3))
    assert set(views) == {0, 1, 2}
    for pid, view in views.items():
        assert view.pid == pid
        assert view.vertex.color == pid
        assert pid in view.view1
        assert view.view1 <= view.witnessed


def test_view1_states_match_partition(ra_1res):
    executor = AffineModelExecutor(ra_1res, seed=8)
    views = executor.run_iteration(states(3))
    for pid, view in views.items():
        assert view.view1_states == {
            q: f"state-{q}" for q in view.view1
        }


def test_view2_carries_first_round_views(ra_1res):
    executor = AffineModelExecutor(ra_1res, seed=15)
    views = executor.run_iteration(states(3))
    for pid, view in views.items():
        for q, block in view.view2_states.items():
            assert q in {w.color for w in view.vertex.carrier}
            assert set(block) <= {0, 1, 2}


def test_chosen_facets_stay_in_task(ra_fig5b):
    executor = AffineModelExecutor(ra_fig5b, seed=23)
    for _ in range(20):
        executor.run_iteration(states(3))
    for facet in executor.history:
        assert facet in ra_fig5b.complex


def test_all_processes_must_participate(ra_1res):
    executor = AffineModelExecutor(ra_1res)
    with pytest.raises(ValueError):
        executor.run_iteration({0: "a"})


def test_chooser_outside_task_rejected(ra_1of, chr2):
    outside = next(iter(chr2.facets - ra_1of.complex.facets))
    executor = AffineModelExecutor(
        ra_1of, chooser=scripted_chooser([outside])
    )
    with pytest.raises(ValueError):
        executor.run_iteration(states(3))


def test_scripted_chooser_cycles(ra_1res):
    facets = sorted(ra_1res.complex.facets, key=repr)[:2]
    executor = AffineModelExecutor(
        ra_1res, chooser=scripted_chooser(facets)
    )
    for _ in range(4):
        executor.run_iteration(states(3))
    assert executor.history == [facets[0], facets[1], facets[0], facets[1]]


def test_random_chooser_deterministic_by_seed(ra_1res):
    a = AffineModelExecutor(ra_1res, seed=99)
    b = AffineModelExecutor(ra_1res, seed=99)
    for _ in range(5):
        a.run_iteration(states(3))
        b.run_iteration(states(3))
    assert a.history == b.history


def test_facet_to_round_partitions_roundtrip(chr2):
    from repro.runtime.iis import run_iis

    for facet in list(chr2.facets)[:40]:
        first, second = facet_to_round_partitions(facet)
        rebuilt = run_iis(3, [first, second]).facet()
        assert rebuilt == facet

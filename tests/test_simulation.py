"""Experiment E13 (memory half): the Section-6 snapshot simulation."""

import pytest

from repro.core import full_affine_task
from repro.runtime.affine_executor import scripted_chooser
from repro.runtime.simulation import (
    SnapshotSimulation,
    dominates,
    fuzz_snapshot_simulation,
    merge,
    snapshots_contain_own_writes,
    snapshots_totally_ordered,
)


def test_dominates_basics():
    assert dominates({0: (2, "a")}, {0: (1, "b")})
    assert not dominates({0: (1, "b")}, {0: (2, "a")})
    assert dominates({0: (1, "a"), 1: (1, "b")}, {})
    assert not dominates({}, {0: (1, "a")})


def test_merge_keeps_latest():
    target = {0: (1, "old")}
    merge(target, {0: (2, "new"), 1: (1, "x")})
    assert target == {0: (2, "new"), 1: (1, "x")}
    merge(target, {0: (1, "stale")})
    assert target[0] == (2, "new")


def test_single_write_completes(ra_1res):
    sim = SnapshotSimulation(ra_1res, {0: [("write", "v")], 1: [], 2: []})
    results = sim.run()
    assert results[0] == [("write", 1)]


def test_write_then_snapshot_sees_own_write(ra_1res):
    sim = SnapshotSimulation(
        ra_1res,
        {0: [("write", "v"), ("snapshot",)], 1: [], 2: []},
        seed=3,
    )
    results = sim.run()
    kinds = [op[0] for op in results[0]]
    assert kinds == ["write", "snapshot"]
    snapshot = results[0][1][1]
    assert snapshot[0] == (1, "v")


def test_unknown_op_rejected(ra_1res):
    sim = SnapshotSimulation(ra_1res, {0: [("cas", 1)], 1: [], 2: []})
    with pytest.raises(ValueError):
        sim.run()


def test_snapshots_see_completed_writes(ra_1res):
    """A write completed before another process's later snapshot request
    must appear in that snapshot."""
    results = fuzz_snapshot_simulation(ra_1res, runs=25, seed=21)
    for run in results:
        assert snapshots_totally_ordered(run)
        assert snapshots_contain_own_writes(run)


@pytest.mark.parametrize(
    "ra_fixture", ["ra_1of", "ra_2of", "ra_1res", "ra_fig5b"]
)
def test_fuzz_over_zoo_models(request, ra_fixture):
    task = request.getfixturevalue(ra_fixture)
    fuzz_snapshot_simulation(task, runs=20, seed=5)


def test_fuzz_wait_free_chr2():
    fuzz_snapshot_simulation(full_affine_task(3, 2), runs=20, seed=9)


def test_adversarial_constant_schedule(ra_1res):
    """A fixed asymmetric facet replayed forever: the structurally-acked
    completion still terminates (the fast process never waits on the
    slow ones)."""
    facet = sorted(ra_1res.complex.facets, key=repr)[0]
    sim = SnapshotSimulation(
        ra_1res,
        {
            0: [("write", "a"), ("snapshot",)],
            1: [("write", "b"), ("snapshot",)],
            2: [("write", "c"), ("snapshot",)],
        },
        chooser=scripted_chooser([facet]),
    )
    results = sim.run(max_iterations=400)
    assert snapshots_totally_ordered(results)


def test_checker_rejects_bad_histories():
    bad = {
        0: [("snapshot", {0: (1, "a")})],
        1: [("snapshot", {1: (1, "b")})],
    }
    assert not snapshots_totally_ordered(bad)
    bad_own = {0: [("write", 2), ("snapshot", {0: (1, "stale")})]}
    assert not snapshots_contain_own_writes(bad_own)

"""End-to-end integration: the FACT pipeline across the adversary zoo.

For each fair adversary in the catalogue this exercises the full chain

    adversary -> alpha -> R_A -> (a) Algorithm 1 in the α-model
                               (b) µ_Q / set consensus in R*_A
                               (c) the FACT map search

and cross-checks every stage against ``setcon``.
"""

import pytest

from repro.adversaries import (
    agreement_function_of,
    build_catalogue,
    is_fair,
    setcon,
)
from repro.core import r_affine
from repro.protocols.adaptive_set_consensus import fuzz_adaptive_set_consensus
from repro.protocols.mu_map import verify_mu_properties
from repro.runtime.algorithm1 import fuzz_algorithm1
from repro.tasks import minimal_set_consensus

FAIR_ZOO = [
    entry
    for entry in build_catalogue(3)
    if is_fair(entry.adversary) and setcon(entry.adversary) >= 1
]


@pytest.mark.parametrize(
    "entry", FAIR_ZOO, ids=[entry.name for entry in FAIR_ZOO]
)
def test_fact_pipeline(entry):
    adversary = entry.adversary
    power = setcon(adversary)
    alpha = agreement_function_of(adversary, name=entry.name)
    task = r_affine(alpha)

    # Theorem 16's decidable core: one shot of R_A solves exactly
    # setcon(A)-set consensus with identity inputs.  For maximal-power
    # (wait-free-equivalent) adversaries R_A is the whole Chr² s and
    # refuting (n-1)-set consensus there is Sperner-hard for plain
    # backtracking; the depth-1 complex Chr s decides the same question
    # (see repro.analysis.sperner for the depth-2 parity evidence).
    if power == adversary.n:
        from repro.core import full_affine_task

        assert minimal_set_consensus(full_affine_task(3, 1)) == power
    else:
        assert minimal_set_consensus(task) == power

    # Theorem 7 experimentally: Algorithm 1 stays within R_A and is live.
    outcomes = fuzz_algorithm1(alpha, task, runs=25, seed=101)
    assert all(outcome.in_affine_task for outcome in outcomes)

    # Properties 9/10/12 of µ_Q, exhaustively.
    report = verify_mu_properties(alpha, task)
    assert all(report.values())

    # Set consensus in R*_A respects the alpha bound.
    results = fuzz_adaptive_set_consensus(alpha, task, runs=25, seed=202)
    assert all(
        outcome.distinct_decisions() <= power for outcome in results
    )


def test_unfair_adversary_breaks_no_machinery():
    """R_A is still constructible for unfair adversaries; only the
    model-equivalence claims are out of scope."""
    from repro.adversaries import unfair_example

    adversary = unfair_example()
    alpha = agreement_function_of(adversary, name="unfair")
    task = r_affine(alpha)
    assert task.complex.is_pure(2)


def test_model_strength_order_matches_inclusion():
    """setcon orders the zoo; R_A inclusion respects that order whenever
    one alpha dominates the other pointwise."""
    from repro.adversaries import k_concurrency_alpha

    tasks = [r_affine(k_concurrency_alpha(3, k)) for k in (1, 2, 3)]
    for weak, strong in zip(tasks, tasks[1:]):
        assert weak.complex.complex.is_sub_complex_of(strong.complex.complex)


@pytest.mark.slow
def test_fact_pipeline_n4_sample():
    """One n=4 instance end to end (slow): 1-resilience."""
    from repro.adversaries import t_resilient

    adversary = t_resilient(4, 1)
    alpha = agreement_function_of(adversary, name="1-res-n4")
    task = r_affine(alpha)
    assert task.complex.is_pure(3)
    assert minimal_set_consensus(task, budget=5_000_000) == setcon(
        adversary
    )

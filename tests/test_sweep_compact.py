"""Tests for repro.sweep.compact — interned complexes and streaming Chr^m."""

import sys

import pytest

from repro.sweep.compact import (
    CompactComplex,
    compact_census,
    compact_chr,
    deep_sizeof,
    stream_chr_facets,
)
from repro.topology.chromatic import ChromaticComplex, standard_simplex
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import vertex_key
from repro.topology.subdivision import iterated_subdivision


# ----------------------------------------------------------------------
# Round trips against the classic constructions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,m", [(1, 0), (2, 0), (2, 1), (2, 2), (3, 1), (3, 2), (4, 1)])
def test_compact_chr_matches_iterated_subdivision(n, m):
    classic = iterated_subdivision(standard_simplex(n), m)
    compact = compact_chr(n, m)
    assert set(compact.facets()) == set(classic.facets)


@pytest.mark.parametrize("n,m", [(2, 1), (3, 1), (3, 2)])
def test_round_trip_through_classic_types(n, m):
    compact = compact_chr(n, m)
    as_simplicial = compact.to_simplicial()
    assert isinstance(as_simplicial, SimplicialComplex)
    as_chromatic = compact.to_chromatic()
    assert isinstance(as_chromatic, ChromaticComplex)
    assert CompactComplex.from_complex(as_simplicial) == compact
    assert CompactComplex.from_complex(as_chromatic) == compact


def test_from_complex_accepts_both_classic_types():
    classic = iterated_subdivision(standard_simplex(3), 1)
    via_chromatic = CompactComplex.from_complex(classic)
    via_simplicial = CompactComplex.from_complex(classic.complex)
    assert via_chromatic == via_simplicial


# ----------------------------------------------------------------------
# Canonical layout
# ----------------------------------------------------------------------
def test_ids_follow_vertex_key_order():
    compact = compact_chr(3, 1)
    table = compact.vertex_table
    assert table == sorted(table, key=vertex_key)
    assert [compact.id_of(v) for v in table] == list(range(len(table)))


def test_layout_is_input_order_independent():
    facets = list(stream_chr_facets(standard_simplex(3).facets, 1))
    forward = CompactComplex.from_facets(facets)
    backward = CompactComplex.from_facets(reversed(facets))
    assert forward.vertex_table == backward.vertex_table
    assert list(forward.facet_ids()) == list(backward.facet_ids())


def test_facet_ids_are_sorted_and_strided():
    compact = compact_chr(3, 1)
    ids = list(compact.facet_ids())
    assert ids == sorted(ids, key=lambda t: (len(t), t))
    assert all(tuple(sorted(t)) == t for t in ids)
    assert len(ids) == compact.n_facets == len(compact)


def test_non_maximal_candidates_are_absorbed():
    a, b, c = ("a", 0), ("b", 1), ("c", 2)
    compact = CompactComplex.from_facets([[a, b, c], [a, b], [c], [a, b, c]])
    assert compact.n_facets == 1
    assert next(iter(compact.facets())) == frozenset({a, b, c})
    classic = SimplicialComplex([[a, b, c], [a, b], [c]])
    assert set(compact.facets()) == set(classic.facets)


def test_empty_complex():
    compact = CompactComplex.from_facets([])
    assert compact.n_facets == 0
    assert compact.n_vertices == 0
    assert compact.dimension == -1
    assert compact.f_vector() == []
    assert compact.n_simplices() == 0


# ----------------------------------------------------------------------
# Streaming subdivision
# ----------------------------------------------------------------------
def test_stream_chr_facets_depth_zero_is_identity():
    base = standard_simplex(3)
    assert set(stream_chr_facets(base.facets, 0)) == set(base.facets)


def test_stream_chr_facets_rejects_negative_depth():
    with pytest.raises(ValueError):
        list(stream_chr_facets(standard_simplex(2).facets, -1))


def test_stream_chr_facets_counts_follow_fubini():
    # facets of Chr^1 s for n processes = Fubini(n) ordered set partitions
    base4 = standard_simplex(4)
    assert sum(1 for _ in stream_chr_facets(base4.facets, 1)) == 75
    base3 = standard_simplex(3)
    assert sum(1 for _ in stream_chr_facets(base3.facets, 2)) == 13 * 13


def test_stream_is_lazy():
    # Pulling a prefix must not exhaust the generator's work up front.
    stream = stream_chr_facets(standard_simplex(4).facets, 2)
    first = next(stream)
    assert len(first) == 4


# ----------------------------------------------------------------------
# Census and memory accounting
# ----------------------------------------------------------------------
def test_f_vector_matches_classic_closure():
    classic = iterated_subdivision(standard_simplex(3), 2)
    compact = CompactComplex.from_complex(classic)
    by_dim = {}
    for simplex in classic.simplices:
        by_dim[len(simplex) - 1] = by_dim.get(len(simplex) - 1, 0) + 1
    assert compact.f_vector() == [by_dim[d] for d in sorted(by_dim)]
    assert compact.n_simplices() == len(classic.simplices)


def test_deep_sizeof_counts_shared_objects_once():
    shared = tuple(range(50))
    assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])


def test_deep_sizeof_exceeds_shallow_for_containers():
    nested = [frozenset({(1, 2), (3, 4)})]
    assert deep_sizeof(nested) > sys.getsizeof(nested)


def test_compact_census_reports_compression():
    classic = iterated_subdivision(standard_simplex(3), 2)
    census = compact_census(classic)
    assert census["vertices"] == len(classic.vertices)
    assert census["facets"] == len(classic.facets)
    assert census["simplices"] == len(classic.simplices)
    assert census["dimension"] == 2
    assert sum(census["f_vector"]) == census["simplices"]
    assert census["naive_bytes"] > census["interned_bytes"] > 0
    assert census["compression_ratio"] > 1


def test_memory_bytes_is_positive_and_smaller_than_naive():
    classic = iterated_subdivision(standard_simplex(3), 1)
    compact = CompactComplex.from_complex(classic)
    assert 0 < compact.memory_bytes() < deep_sizeof(frozenset(classic.simplices))

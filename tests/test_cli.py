"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Chr^1 s" in out
    assert "R_A(1-OF)" in out
    assert "73" in out


def test_classify_command(capsys):
    assert main(["classify"]) == 0
    out = capsys.readouterr().out
    assert "wait-free" in out
    assert "NO" in out  # the unfair example


def test_landscape_command(capsys):
    assert main(["landscape"]) == 0
    out = capsys.readouterr().out
    assert "127" in out
    assert "43" in out


def test_fact_command(capsys):
    assert main(["fact"]) == 0
    out = capsys.readouterr().out
    assert "min k-set consensus" in out


def test_algorithm1_command(capsys):
    assert main(["algorithm1", "--runs", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "safety violations: 0" in out


def test_crossover_command(capsys):
    assert main(["crossover"]) == 0
    out = capsys.readouterr().out
    assert "eps=3^-2" in out


def test_inspect_fair_adversary(capsys):
    assert main(["inspect", "[[0,1],[1,2],[0,2],[0,1,2]]"]) == 0
    out = capsys.readouterr().out
    assert "fair: True" in out
    assert "affine task R_A" in out


def test_inspect_unfair_adversary(capsys):
    assert main(["inspect", "[[0,1],[2]]"]) == 0
    out = capsys.readouterr().out
    assert "fair: False" in out
    assert "counterexample" in out


def test_inspect_json_emits_the_service_schema(capsys):
    import json

    from repro.adversaries import Adversary
    from repro.engine import JobSpec, serialize

    live_sets = "[[0,1],[1,2],[0,2],[0,1,2]]"
    assert main(["inspect", "--json", live_sets]) == 0
    response = json.loads(capsys.readouterr().out)
    assert response["v"] == 1
    assert response["ok"] is True
    assert response["kind"] == "classify"
    adversary = Adversary(3, [set(live) for live in json.loads(live_sets)])
    direct = JobSpec("classify", (adversary,)).run()
    assert response["value"] == serialize(direct)


def test_serve_and_query_round_trip(capsys):
    """`repro query` renders values fetched from a live `repro serve`."""
    import json

    from repro.engine import Engine
    from repro.service import BackgroundServer, MemCache

    with BackgroundServer(Engine(cache=MemCache())) as server:
        port = str(server.port)
        assert main(["query", "ping", "--port", port]) == 0
        assert "pong" in capsys.readouterr().out
        assert main(["query", "chr", "--port", port, "--depth", "1"]) == 0
        assert "f_vector" in capsys.readouterr().out
        live_sets = "[[0,1],[1,2],[0,2],[0,1,2]]"
        assert main(["query", "classify", live_sets, "--port", port]) == 0
        assert "fair: True" in capsys.readouterr().out
        assert main(
            ["query", "solve", live_sets, "--port", port, "--k", "2", "--json"]
        ) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] and response["kind"] == "solve"
        assert main(["query", "stats", "--port", port]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["engine"]["jobs"] == 1


def test_classify_engine_output_matches_legacy(capsys):
    assert main(["classify"]) == 0
    legacy = capsys.readouterr().out
    assert main(["classify", "--jobs", "2", "--no-cache"]) == 0
    assert capsys.readouterr().out == legacy


def test_fact_engine_output_matches_legacy(capsys, tmp_path):
    assert main(["fact"]) == 0
    legacy = capsys.readouterr().out
    assert main(["fact", "--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out == legacy
    # warm cache, same table
    assert main(["fact", "--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out == legacy


def test_batch_command_cold_then_warm(capsys, tmp_path):
    assert main(["batch", "--cache-dir", str(tmp_path)]) == 0
    cold = capsys.readouterr().out
    assert "min k-set consensus" in cold
    assert "cache misses" in cold

    assert main(["batch", "--cache-dir", str(tmp_path)]) == 0
    warm = capsys.readouterr().out
    assert "cache misses: 0" in warm
    # Tables (everything above the stats block) must be identical.
    assert cold.split("engine:")[0] == warm.split("engine:")[0]

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Chr^1 s" in out
    assert "R_A(1-OF)" in out
    assert "73" in out


def test_classify_command(capsys):
    assert main(["classify"]) == 0
    out = capsys.readouterr().out
    assert "wait-free" in out
    assert "NO" in out  # the unfair example


def test_landscape_command(capsys):
    assert main(["landscape"]) == 0
    out = capsys.readouterr().out
    assert "127" in out
    assert "43" in out


def test_fact_command(capsys):
    assert main(["fact"]) == 0
    out = capsys.readouterr().out
    assert "min k-set consensus" in out


def test_algorithm1_command(capsys):
    assert main(["algorithm1", "--runs", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "safety violations: 0" in out


def test_crossover_command(capsys):
    assert main(["crossover"]) == 0
    out = capsys.readouterr().out
    assert "eps=3^-2" in out


def test_inspect_fair_adversary(capsys):
    assert main(["inspect", "[[0,1],[1,2],[0,2],[0,1,2]]"]) == 0
    out = capsys.readouterr().out
    assert "fair: True" in out
    assert "affine task R_A" in out


def test_inspect_unfair_adversary(capsys):
    assert main(["inspect", "[[0,1],[2]]"]) == 0
    out = capsys.readouterr().out
    assert "fair: False" in out
    assert "counterexample" in out


def test_inspect_json_emits_the_service_schema(capsys):
    import json

    from repro.adversaries import Adversary
    from repro.engine import JobSpec, serialize

    live_sets = "[[0,1],[1,2],[0,2],[0,1,2]]"
    assert main(["inspect", "--json", live_sets]) == 0
    response = json.loads(capsys.readouterr().out)
    assert response["v"] == 1
    assert response["ok"] is True
    assert response["kind"] == "classify"
    adversary = Adversary(3, [set(live) for live in json.loads(live_sets)])
    direct = JobSpec("classify", (adversary,)).run()
    assert response["value"] == serialize(direct)


def test_inspect_json_census_rides_along(capsys):
    import json

    live_sets = "[[0,1],[1,2],[0,2],[0,1,2]]"
    assert main(["inspect", "--json", live_sets]) == 0
    response = json.loads(capsys.readouterr().out)
    census = response["census"]
    assert census["facets"] > 0 and census["vertices"] > 0
    assert sum(census["f_vector"]) == census["simplices"]
    assert census["naive_bytes"] > census["interned_bytes"]
    assert census["compression_ratio"] > 1
    # Unfair adversaries have no R_A; the key is present but null.
    assert main(["inspect", "--json", "[[0,1],[2]]"]) == 0
    response = json.loads(capsys.readouterr().out)
    assert response["ok"] is True and response["census"] is None


def test_inspect_human_output_shows_interned_sizes(capsys):
    assert main(["inspect", "[[0,1],[1,2],[0,2],[0,1,2]]"]) == 0
    out = capsys.readouterr().out
    assert "interned form" in out
    assert "compression" in out


def test_sweep_cli_runs_resumes_and_writes_artifact(capsys, tmp_path):
    checkpoint = str(tmp_path / "ckpt")
    artifact = str(tmp_path / "landscape.json")
    base = ["sweep", "--grid", "n3-smoke", "--checkpoint-dir", checkpoint]
    assert main(base + ["--limit", "3"]) == 2
    assert "pending" in capsys.readouterr().out
    # a populated checkpoint dir without --resume is refused
    import pytest

    with pytest.raises(SystemExit):
        main(base)
    assert main(base + ["--resume", "--output", artifact]) == 0
    out = capsys.readouterr().out
    assert "resumed from checkpoint: 3" in out
    assert "wrote" in out
    import json

    doc = json.loads(open(artifact).read())
    assert doc["format"] == "repro.sweep/landscape"
    assert len(doc["cells"]) == 12


def test_sweep_cli_rejects_unknown_grid(tmp_path):
    import pytest

    with pytest.raises(SystemExit, match="unknown grid"):
        main(
            [
                "sweep",
                "--grid",
                "no-such-grid",
                "--checkpoint-dir",
                str(tmp_path),
            ]
        )


def test_serve_and_query_round_trip(capsys):
    """`repro query` renders values fetched from a live `repro serve`."""
    import json

    from repro.engine import Engine
    from repro.service import BackgroundServer, MemCache

    with BackgroundServer(Engine(cache=MemCache())) as server:
        port = str(server.port)
        assert main(["query", "ping", "--port", port]) == 0
        assert "pong" in capsys.readouterr().out
        assert main(["query", "chr", "--port", port, "--depth", "1"]) == 0
        assert "f_vector" in capsys.readouterr().out
        live_sets = "[[0,1],[1,2],[0,2],[0,1,2]]"
        assert main(["query", "classify", live_sets, "--port", port]) == 0
        assert "fair: True" in capsys.readouterr().out
        assert main(
            ["query", "solve", live_sets, "--port", port, "--k", "2", "--json"]
        ) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] and response["kind"] == "solve"
        assert main(["query", "stats", "--port", port]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["engine"]["jobs"] == 1


def test_classify_engine_output_matches_legacy(capsys):
    assert main(["classify"]) == 0
    legacy = capsys.readouterr().out
    assert main(["classify", "--jobs", "2", "--no-cache"]) == 0
    assert capsys.readouterr().out == legacy


def test_fact_engine_output_matches_legacy(capsys, tmp_path):
    assert main(["fact"]) == 0
    legacy = capsys.readouterr().out
    assert main(["fact", "--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out == legacy
    # warm cache, same table
    assert main(["fact", "--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out == legacy


def test_batch_command_cold_then_warm(capsys, tmp_path):
    assert main(["batch", "--cache-dir", str(tmp_path)]) == 0
    cold = capsys.readouterr().out
    assert "min k-set consensus" in cold
    assert "cache misses" in cold

    assert main(["batch", "--cache-dir", str(tmp_path)]) == 0
    warm = capsys.readouterr().out
    assert "cache misses: 0" in warm
    # Tables (everything above the stats block) must be identical.
    assert cold.split("engine:")[0] == warm.split("engine:")[0]


def test_batch_unknown_kind_exits_with_the_valid_kinds(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["batch", "--only", "bogus"])
    message = str(excinfo.value)
    assert "unknown job kind 'bogus'" in message
    assert "simulate" in message and "oracle" in message
    assert "solve" in message


def test_batch_rejects_kinds_without_a_section(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["batch", "--only", "sleep"])
    assert "no batch section" in str(excinfo.value)


def test_batch_only_classify_skips_the_fact_table(capsys):
    assert main(["batch", "--only", "classify", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "adversary" in out
    assert "min k-set consensus" not in out


def test_sim_command_pass_and_violation(capsys):
    assert (
        main(
            [
                "sim",
                "reliable-broadcast",
                "--n", "4", "--t", "1",
                "--schedules", "2",
                "--no-cache",
            ]
        )
        == 0
    )
    assert "verdict: pass" in capsys.readouterr().out

    assert (
        main(
            [
                "sim",
                "bosco-weak-agreement",
                "--n", "3", "--t", "1",
                "--schedules", "2",
                "--no-cache",
            ]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "verdict: VIOLATION" in out
    assert "violation: agreement" in out


def test_sim_command_json_report(capsys):
    import json

    assert (
        main(
            [
                "sim",
                "hitting-set-consensus",
                "[[0],[0,1],[0,2],[0,1,2]]",
                "--k", "1",
                "--schedules", "2",
                "--no-cache",
                "--json",
            ]
        )
        == 0
    )
    report = json.loads(capsys.readouterr().out)
    assert report["pass"] is True and report["k"] == 1


def test_oracle_command_list_and_named_cases(capsys):
    assert main(["oracle", "--list", "--no-cache"]) == 0
    listing = capsys.readouterr().out
    assert "ksc-wait-free-k1" in listing and "wba-n7-t2" in listing

    assert (
        main(["oracle", "wba-n4-t1", "rbcast-n3-t1", "--no-cache"]) == 0
    )
    out = capsys.readouterr().out
    assert "agree" in out and "DISAGREE" not in out


def test_oracle_command_unknown_case(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["oracle", "no-such-case", "--no-cache"])
    assert "known cases" in str(excinfo.value)


def test_sim_artifact_then_oracle_replay(capsys, tmp_path):
    artifact = tmp_path / "violation.json"
    assert (
        main(
            [
                "sim",
                "bosco-weak-agreement",
                "--n", "3", "--t", "1",
                "--schedules", "2",
                "--no-cache",
                "--artifact", str(artifact),
            ]
        )
        == 1
    )
    capsys.readouterr()
    assert artifact.exists()
    assert main(["oracle", "--replay", str(artifact), "--no-cache"]) == 0
    assert "reproduced: yes" in capsys.readouterr().out


def test_query_simulate_against_a_live_service(capsys):
    from repro.engine import Engine
    from repro.service import BackgroundServer, MemCache

    with BackgroundServer(Engine(cache=MemCache())) as server:
        port = str(server.port)
        assert (
            main(
                [
                    "query", "simulate",
                    "--protocol", "bosco-weak-agreement",
                    "--n", "4", "--t", "1",
                    "--schedules", "2",
                    "--port", port,
                ]
            )
            == 0
        )
        assert "verdict: pass" in capsys.readouterr().out
        assert (
            main(
                [
                    "query", "oracle",
                    "[[0],[0,1],[0,2],[0,1,2]]",
                    "--protocol", "hitting-set-consensus",
                    "--k", "1",
                    "--schedules", "2",
                    "--port", port,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "agree: True" in out and "reference: fact" in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Chr^1 s" in out
    assert "R_A(1-OF)" in out
    assert "73" in out


def test_classify_command(capsys):
    assert main(["classify"]) == 0
    out = capsys.readouterr().out
    assert "wait-free" in out
    assert "NO" in out  # the unfair example


def test_landscape_command(capsys):
    assert main(["landscape"]) == 0
    out = capsys.readouterr().out
    assert "127" in out
    assert "43" in out


def test_fact_command(capsys):
    assert main(["fact"]) == 0
    out = capsys.readouterr().out
    assert "min k-set consensus" in out


def test_algorithm1_command(capsys):
    assert main(["algorithm1", "--runs", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "safety violations: 0" in out


def test_crossover_command(capsys):
    assert main(["crossover"]) == 0
    out = capsys.readouterr().out
    assert "eps=3^-2" in out


def test_inspect_fair_adversary(capsys):
    assert main(["inspect", "[[0,1],[1,2],[0,2],[0,1,2]]"]) == 0
    out = capsys.readouterr().out
    assert "fair: True" in out
    assert "affine task R_A" in out


def test_inspect_unfair_adversary(capsys):
    assert main(["inspect", "[[0,1],[2]]"]) == 0
    out = capsys.readouterr().out
    assert "fair: False" in out
    assert "counterexample" in out

"""tools/bench_gate.py — the benchmark trajectory gate.

The gate is CI's last line against silent performance regressions, so
its own failure modes are tested here: it must pass when fresh numbers
match the baselines, fail loudly on a doctored regression, on parity
drift, and on a benchmark that silently did not run — and it must pass
against this repository's real committed baselines.
"""

from __future__ import annotations

import importlib.util
import json
import shutil
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GATE_PATH = REPO_ROOT / "tools" / "bench_gate.py"

spec = importlib.util.spec_from_file_location("bench_gate", GATE_PATH)
bench_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_gate)

#: A minimal, internally consistent baseline set covering every rule.
BASELINES = {
    "BENCH_solver.json": {
        "workload": {"queries": 15, "solvable": 11, "search_nodes_total": 2052},
        "fc_nodes_vs_legacy": 0.454,
        "median_speedup_warm": 100.0,
        "median_speedup_cold": 1.0,
        "median_speedup_fc_warm": 25.0,
        "symmetry": {"qualifying_queries": 3},
        "median_speedup_cold_symmetry": 1.8,
        "portfolio": {
            "races": 15,
            "win_histogram": {"bitset": 9, "fc": 4, "symmetry": 2},
        },
    },
    "BENCH_engine.json": {
        "workload": {"adversaries_classified": 9, "solvability_queries": 15},
        "artifacts_cached": 142,
        "speedup_warm_cache": 20.0,
        "speedup_multiworker_cold": None,
        "speedup_multiworker_warm": None,
        "saturation": {"speedup_jobs2": None},
    },
    "BENCH_workers.json": {
        "workload": {
            "affinity_jobs": 20,
            "distinct_setups": 2,
            "sleep_jobs": 20,
        },
        "affinity": {"routed": 20, "hits": 18, "hit_rate": 0.9},
        "failures": {
            "worker_restarts": 0,
            "redispatched": 0,
            "codec_errors": 0,
        },
        "dispatch_overhead_ratio": 1.1,
        "saturation": {"speedup_jobs2": 1.9},
    },
    "BENCH_landscape.json": {
        "workload": {"grid_cells": 12, "adversaries": 6},
        "verdicts": {"solvable": 1, "unsolvable": 1, "budget": 0},
        "resume": {"recomputed_cells": 0},
        "compact_vs_naive_memory_ratio": 6.0,
        "resume_overhead_ratio": 1.1,
    },
    "BENCH_service.json": {
        "requests_total": 488,
        "errors": 0,
        "burst": {"engine_computations": 1},
        "memcache_hit_rate": 0.94,
        "coalesce_rate": 0.35,
    },
    "BENCH_certify.json": {
        "workload": {"queries": 15, "solvable": 11, "unsolvable": 4},
        "certify_overhead_ratio": 1.4,
        "check_positive_speedup_vs_search": 2.4,
    },
    "BENCH_obs.json": {
        "workload": {"queries": 15},
        "spans_per_batch": 32,
        "traced_overhead_ratio": 1.0,
        "sim": {
            "span_sim_schedule": 30,
            "span_sim_round": 30,
            "span_sim_guard_wait": 90,
            "traced_overhead_ratio": 1.2,
        },
    },
    "BENCH_sim.json": {
        "workload": {"cases": 15, "schedules_total": 952},
        "deliveries_total": 10617,
        "oracle_agreement_rate": 1.0,
        "disagreements": 0,
    },
    "BENCH_fleet.json": {
        "workload": {"shard_counts": [1, 2, 4], "fixed_service_queries": 48},
        "errors": 0,
        "fixed_service_time": {"speedup_2x": 1.55, "speedup_4x": 2.7},
        "cpu_bound": {"speedup_2x": None},
        "edge": {"doctored_certs_rejected": 1, "verify_overhead_ratio": 1.4},
    },
}


def _write_all(directory: Path, data=BASELINES):
    directory.mkdir(parents=True, exist_ok=True)
    for name, content in data.items():
        (directory / name).write_text(json.dumps(content), encoding="utf-8")


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    _write_all(baseline)
    _write_all(fresh)
    return baseline, fresh


def _run(baseline: Path, fresh: Path) -> int:
    return bench_gate.main(
        ["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)]
    )


def _doctor(fresh: Path, name: str, **changes):
    path = fresh / name
    data = json.loads(path.read_text())
    data.update(changes)
    path.write_text(json.dumps(data), encoding="utf-8")


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
def test_identical_results_pass(dirs, capsys):
    baseline, fresh = dirs
    assert _run(baseline, fresh) == 0
    out = capsys.readouterr().out
    assert out.count("PASS") == len(BASELINES)


def test_improvement_passes(dirs):
    baseline, fresh = dirs
    _doctor(fresh, "BENCH_solver.json", median_speedup_warm=200.0)
    _doctor(fresh, "BENCH_obs.json", traced_overhead_ratio=0.9)
    assert _run(baseline, fresh) == 0


def test_regressed_warm_speedup_fails(dirs, capsys):
    baseline, fresh = dirs
    # 50% of baseline: beyond the 25%-drop tolerance for warm speedups.
    _doctor(fresh, "BENCH_solver.json", median_speedup_warm=50.0)
    assert _run(baseline, fresh) == 1
    out = capsys.readouterr().out
    assert "FAIL BENCH_solver.json" in out
    assert "median_speedup_warm" in out
    assert "dropped 50.0%" in out
    assert "re-baselining" in out  # the remedy ships with the failure


def test_within_tolerance_drop_passes(dirs):
    baseline, fresh = dirs
    # A 20% drop stays inside the 0.75 floor.
    _doctor(fresh, "BENCH_solver.json", median_speedup_warm=80.0)
    assert _run(baseline, fresh) == 0


def test_parity_drift_fails(dirs, capsys):
    baseline, fresh = dirs
    data = json.loads((fresh / "BENCH_solver.json").read_text())
    data["workload"]["search_nodes_total"] += 1
    (fresh / "BENCH_solver.json").write_text(json.dumps(data))
    assert _run(baseline, fresh) == 1
    out = capsys.readouterr().out
    assert "workload.search_nodes_total" in out
    assert "parity metric" in out


def test_overhead_ratio_growth_fails(dirs, capsys):
    baseline, fresh = dirs
    # Ceiling is 3.0 x baseline 1.0; 3.5 breaches it.
    _doctor(fresh, "BENCH_obs.json", traced_overhead_ratio=3.5)
    assert _run(baseline, fresh) == 1
    assert "traced_overhead_ratio" in capsys.readouterr().out


def test_missing_fresh_file_fails(dirs, capsys):
    baseline, fresh = dirs
    (fresh / "BENCH_service.json").unlink()
    assert _run(baseline, fresh) == 1
    assert "benchmark did not run" in capsys.readouterr().out


def test_missing_metric_fails(dirs, capsys):
    baseline, fresh = dirs
    data = json.loads((fresh / "BENCH_engine.json").read_text())
    del data["speedup_warm_cache"]
    (fresh / "BENCH_engine.json").write_text(json.dumps(data))
    assert _run(baseline, fresh) == 1
    assert "missing" in capsys.readouterr().out


def test_new_metric_absent_from_baseline_is_informational(dirs, capsys):
    """A fresh file may carry gated metrics the committed baseline
    predates (a new benchmark section landed in the same PR as its
    gate rule): that is a note, never a failure."""
    baseline, fresh = dirs
    data = json.loads((baseline / "BENCH_solver.json").read_text())
    del data["median_speedup_cold_symmetry"]
    del data["portfolio"]
    del data["symmetry"]
    (baseline / "BENCH_solver.json").write_text(json.dumps(data))
    assert _run(baseline, fresh) == 0
    out = capsys.readouterr().out
    assert "PASS BENCH_solver.json" in out
    assert "note:" in out
    assert "median_speedup_cold_symmetry" in out
    assert "informational until re-baselined" in out


def test_null_symmetry_speedup_skips(dirs):
    # No qualifying symmetric search-dominant case on some grid: the
    # benchmark records null, the ratio comparison skips.
    baseline, fresh = dirs
    _doctor(
        fresh,
        "BENCH_solver.json",
        median_speedup_cold_symmetry=None,
        symmetry={"qualifying_queries": 3},
    )
    assert _run(baseline, fresh) == 0


def test_new_benchmark_without_baseline_passes(dirs, capsys):
    baseline, fresh = dirs
    (baseline / "BENCH_obs.json").unlink()
    assert _run(baseline, fresh) == 0
    assert "NEW  BENCH_obs.json" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Unit checks on the comparison kernel
# ----------------------------------------------------------------------
def test_check_metric_kinds():
    check = bench_gate.check_metric
    assert check("x", bench_gate.EXACT, 0.0, 5, 5) is None
    assert "exactly" in check("x", bench_gate.EXACT, 0.0, 5, 6)
    assert check("x", bench_gate.MIN_RATIO, 0.75, 100.0, 75.0) is None
    assert "floor" in check("x", bench_gate.MIN_RATIO, 0.75, 100.0, 74.9)
    assert check("x", bench_gate.MAX_RATIO, 1.5, 1.0, 1.5) is None
    assert "ceiling" in check("x", bench_gate.MAX_RATIO, 1.5, 1.0, 1.6)
    assert "not numeric" in check(
        "x", bench_gate.MIN_RATIO, 0.75, "fast", "slow"
    )
    with pytest.raises(ValueError):
        check("x", "mystery", 0.0, 1, 1)


def test_null_ratio_metric_is_skipped_not_compared():
    # A benchmark records null when the environment cannot produce the
    # measurement (multiworker scaling on one CPU).  Either side being
    # null must read as "skipped (environment)" for ratio kinds...
    check = bench_gate.check_metric
    assert check("x", bench_gate.MIN_RATIO, 0.75, None, None) is None
    assert check("x", bench_gate.MIN_RATIO, 0.75, 2.0, None) is None
    assert check("x", bench_gate.MIN_RATIO, 0.75, None, 0.61) is None
    assert check("x", bench_gate.MAX_RATIO, 1.5, None, 99.0) is None
    # ...while parity metrics still demand an exact match.
    assert check("x", bench_gate.EXACT, 0.0, None, None) is None
    assert "exactly" in check("x", bench_gate.EXACT, 0.0, 5, None)


def test_null_multiworker_speedup_passes_end_to_end(dirs):
    baseline, fresh = dirs
    # Baseline measured on a multi-CPU box, fresh run on a 1-CPU box.
    _doctor(baseline, "BENCH_engine.json", speedup_multiworker_cold=1.4)
    _doctor(fresh, "BENCH_engine.json", speedup_multiworker_cold=None, cpu_count=1)
    assert _run(baseline, fresh) == 0


def test_min_value_and_present_kinds():
    check = bench_gate.check_metric
    assert check("x", bench_gate.MIN_VALUE, 2.0, None, 2.0) is None
    assert "minimum" in check("x", bench_gate.MIN_VALUE, 2.0, None, 1.9)
    # The multicore lane demands a real measurement: null fails here.
    assert "requires a real measurement" in check(
        "x", bench_gate.MIN_VALUE, 0.1, None, None
    )
    assert "not numeric" in check("x", bench_gate.MIN_VALUE, 0.1, None, "fast")
    # PRESENT passes on any value once the lookup resolved it.
    assert check("x", bench_gate.PRESENT, 0.0, None, {"bitset": 3}) is None


# ----------------------------------------------------------------------
# The multicore lane
# ----------------------------------------------------------------------
def _run_multicore(baseline: Path, fresh: Path) -> int:
    return bench_gate.main(
        [
            "--baseline-dir",
            str(baseline),
            "--fresh-dir",
            str(fresh),
            "--require-multicore",
        ]
    )


@pytest.fixture()
def multicore_dirs(dirs):
    """Baselines/fresh doctored to what a multi-core lane produces."""
    baseline, fresh = dirs
    for side in dirs:
        _doctor(
            side,
            "BENCH_engine.json",
            cpu_count=2,
            speedup_multiworker_cold=0.9,
            speedup_multiworker_warm=1.1,
            saturation={"speedup_jobs2": 1.2},
        )
    return baseline, fresh


def test_multicore_rules_pass_with_real_measurements(multicore_dirs):
    baseline, fresh = multicore_dirs
    assert _run_multicore(baseline, fresh) == 0


def test_multicore_rules_fail_on_null_saturation(multicore_dirs, capsys):
    baseline, fresh = multicore_dirs
    _doctor(
        fresh,
        "BENCH_engine.json",
        speedup_multiworker_cold=None,
        saturation={"speedup_jobs2": None},
    )
    # The default gate still skips nulls...
    assert _run(baseline, fresh) == 0
    # ...but the multicore lane treats them as missing measurements.
    assert _run_multicore(baseline, fresh) == 1
    out = capsys.readouterr().out
    assert "requires a real measurement" in out


def test_multicore_env_var_activates(multicore_dirs, monkeypatch, capsys):
    baseline, fresh = multicore_dirs
    _doctor(fresh, "BENCH_workers.json", saturation={"speedup_jobs2": None})
    monkeypatch.setenv("REPRO_BENCH_MULTICORE", "1")
    assert _run(baseline, fresh) == 1
    assert "saturation.speedup_jobs2" in capsys.readouterr().out


def test_every_multicore_rule_resolves_in_doctored_baselines(multicore_dirs):
    baseline, fresh = multicore_dirs
    for name, rules in bench_gate.MULTICORE_RULES.items():
        data = json.loads((fresh / name).read_text())
        for path, _, _ in rules:
            bench_gate.lookup(data, path)


def test_lookup_dotted_paths():
    data = {"a": {"b": {"c": 3}}}
    assert bench_gate.lookup(data, "a.b.c") == 3
    with pytest.raises(bench_gate.GateFailure):
        bench_gate.lookup(data, "a.b.missing")
    with pytest.raises(bench_gate.GateFailure):
        bench_gate.lookup(data, "a.b.c.deeper")


def test_every_rule_resolves_in_its_synthetic_baseline():
    # Guards the test data itself: a rule added to the gate without a
    # matching field here would quietly skip the doctored-file coverage.
    for name, rules in bench_gate.RULES.items():
        for path, _, _ in rules:
            bench_gate.lookup(BASELINES[name], path)


# ----------------------------------------------------------------------
# The real repository baselines
# ----------------------------------------------------------------------
def test_gate_passes_on_committed_baselines(tmp_path, capsys):
    """Self-comparison of the repo's own BENCH_*.json must pass.

    Uses the working-tree files as both sides (not git HEAD) so the
    test is meaningful in a dirty tree too.
    """
    side = tmp_path / "side"
    side.mkdir()
    found = 0
    for name in bench_gate.RULES:
        source = REPO_ROOT / name
        if source.exists():
            shutil.copy(source, side / name)
            found += 1
    assert found > 0, "no BENCH_*.json files in the repository root"
    assert _run(side, side) == 0

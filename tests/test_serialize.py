"""Round-trip and digest-stability tests for the engine codec.

The cache and the process-pool executor both depend on two properties
of :mod:`repro.engine.serialize`:

* every supported artifact round-trips (``deserialize(serialize(x)) ==
  x``, or table-equivalence for tasks);
* equal values digest identically regardless of construction order —
  the content address must not see set iteration order, dict insertion
  order, or hash randomization.
"""

from __future__ import annotations

import pytest

from repro.adversaries import Adversary, build_catalogue, t_resilience_alpha
from repro.core import r_affine
from repro.engine import (
    SerializationError,
    deserialize,
    digest,
    serialize,
    tasks_equivalent,
)
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch
from repro.topology import chr_complex


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [2, 3])
@pytest.mark.parametrize("depth", [1, 2])
def test_chr_complex_round_trip(n, depth):
    complex_ = chr_complex(n, depth)
    restored = deserialize(serialize(complex_))
    assert restored == complex_
    assert restored.facets == complex_.facets


def test_catalogue_adversaries_round_trip():
    for entry in build_catalogue(3):
        adversary = entry.adversary
        restored = deserialize(serialize(adversary))
        assert restored == adversary
        assert digest(restored) == digest(adversary)


def test_agreement_function_round_trip(alpha_1res, alpha_fig5b):
    for alpha in (alpha_1res, alpha_fig5b):
        restored = deserialize(serialize(alpha))
        assert restored == alpha
        assert restored.table() == alpha.table()


def test_affine_task_round_trip(ra_1of, ra_1res, ra_fig5b):
    for affine in (ra_1of, ra_1res, ra_fig5b):
        restored = deserialize(serialize(affine))
        assert restored == affine
        assert restored.n == affine.n
        assert restored.depth == affine.depth
        assert restored.complex == affine.complex


def test_task_round_trip_by_tabulation():
    task = set_consensus_task(3, 2)
    restored = deserialize(serialize(task))
    assert tasks_equivalent(restored, task)
    # The decoded task drives the decision procedure identically.
    assert serialize(restored) == serialize(task)
    assert digest(restored) == digest(task)


def test_solution_mapping_round_trip(ra_1res):
    task = set_consensus_task(3, 2)
    mapping = MapSearch(ra_1res, task).search()
    assert mapping is not None
    restored = deserialize(serialize(mapping))
    assert restored == mapping


def test_scalars_and_containers_round_trip():
    values = [
        None,
        True,
        0,
        -7,
        3.5,
        "text",
        (1, (2, 3)),
        [1, [2, "x"]],
        frozenset({frozenset({1, 2}), frozenset({0})}),
        {frozenset({0, 1}): (1, 2), "k": None},
    ]
    for value in values:
        assert deserialize(serialize(value)) == value


# ----------------------------------------------------------------------
# Digest stability
# ----------------------------------------------------------------------
def test_digest_independent_of_set_construction_order():
    forward = Adversary(3, [frozenset({0}), frozenset({1, 2}), frozenset({0, 1, 2})])
    backward = Adversary(3, [frozenset({0, 1, 2}), frozenset({1, 2}), frozenset({0})])
    assert digest(forward) == digest(backward)


def test_digest_independent_of_dict_insertion_order():
    one = {"a": 1, "b": 2, frozenset({1}): (3,)}
    other = {frozenset({1}): (3,), "b": 2, "a": 1}
    assert serialize(one) == serialize(other)
    assert digest(one) == digest(other)


def test_digest_of_rebuilt_complex_is_stable():
    complex_ = chr_complex(3, 1)
    rebuilt = type(complex_)(sorted(complex_.facets, key=serialize))
    assert digest(rebuilt) == digest(complex_)


def test_equivalent_alphas_digest_identically():
    # Two independently constructed but equal agreement functions.
    one = t_resilience_alpha(3, 1)
    other = t_resilience_alpha(3, 1)
    assert one is not other
    assert digest(one) == digest(other)


def test_distinct_values_digest_differently():
    assert digest(set_consensus_task(3, 1)) != digest(set_consensus_task(3, 2))
    assert digest(chr_complex(3, 1)) != digest(chr_complex(3, 2))


def test_r_affine_digest_matches_reconstruction(alpha_1res):
    assert digest(r_affine(alpha_1res)) == digest(r_affine(alpha_1res))


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
def test_unknown_type_raises():
    class Opaque:
        pass

    with pytest.raises(SerializationError):
        serialize(Opaque())


def test_malformed_text_raises():
    with pytest.raises(SerializationError):
        deserialize('["no-such-tag",1]')

"""Unit tests for Cont2 (Definition 5, Figure 4)."""


from repro.core.contention import (
    are_contending,
    contention_complex,
    contention_simplices,
    is_contention_simplex,
    max_contention_dim,
)
from repro.runtime.iis import run_iis


def fully_reversed_run():
    """Figure 4a: orders {p2},{p1},{p3} then {p3},{p1},{p2}."""
    return run_iis(
        3,
        [
            (frozenset({1}), frozenset({0}), frozenset({2})),
            (frozenset({2}), frozenset({0}), frozenset({1})),
        ],
    )


def mixed_run():
    """Figure 4b: ordered {p1},{p2},{p3} then {p2},{p3,p1}."""
    return run_iis(
        3,
        [
            (frozenset({0}), frozenset({1}), frozenset({2})),
            (frozenset({1}), frozenset({0, 2})),
        ],
    )


def test_figure4a_all_pairs_contend():
    execution = fully_reversed_run()
    vs = {pid: execution.vertex_of(pid) for pid in range(3)}
    for a in range(3):
        for b in range(a + 1, 3):
            assert are_contending(vs[a], vs[b])
    assert is_contention_simplex(vs.values())


def test_figure4b_only_p1_p2_contend():
    execution = mixed_run()
    vs = {pid: execution.vertex_of(pid) for pid in range(3)}
    # Paper labels p1, p2 -> our 0, 1.
    assert are_contending(vs[0], vs[1])
    assert not are_contending(vs[0], vs[2])
    assert not are_contending(vs[1], vs[2])
    assert not is_contention_simplex(vs.values())


def test_synchronous_run_has_no_contention():
    execution = run_iis(
        3, [(frozenset({0, 1, 2}),), (frozenset({0, 1, 2}),)]
    )
    vs = [execution.vertex_of(pid) for pid in range(3)]
    for a in range(3):
        for b in range(a + 1, 3):
            assert not are_contending(vs[a], vs[b])


def test_singletons_vacuously_contend(chr2):
    v = next(iter(chr2.vertices))
    assert is_contention_simplex([v])


def test_contention_census_figure4c(chr2):
    """Figure 4c numbers: 78 contending edges and 6 triangles at n=3."""
    complex_ = contention_complex(3)
    assert complex_.f_vector() == [99, 78, 6]


def test_contention_simplices_min_dim(chr2):
    triangles = contention_simplices(chr2, min_dim=2)
    assert len(triangles) == 6
    edges_and_up = contention_simplices(chr2, min_dim=1)
    assert len(edges_and_up) == 78 + 6


def test_contention_is_inclusion_closed(chr2):
    triangles = contention_simplices(chr2, min_dim=2)
    for triangle in triangles:
        for v in triangle:
            assert is_contention_simplex(triangle - {v})


def test_max_contention_dim():
    execution = fully_reversed_run()
    facet = execution.facet()
    assert max_contention_dim(facet) == 2
    mixed = mixed_run().facet()
    assert max_contention_dim(mixed) == 1


def test_contention_symmetric(chr2):
    for facet in list(chr2.facets)[:30]:
        vs = sorted(facet, key=repr)
        for i in range(len(vs)):
            for j in range(i + 1, len(vs)):
                assert are_contending(vs[i], vs[j]) == are_contending(
                    vs[j], vs[i]
                )

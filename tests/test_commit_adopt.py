"""Tests for the commit–adopt substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.commit_adopt import (
    check_commit_adopt_outputs,
    fuzz_commit_adopt,
    run_commit_adopt,
)


def test_unanimous_inputs_commit():
    outputs = run_commit_adopt({0: "v", 1: "v", 2: "v"}, seed=1)
    assert all(output == ("commit", "v") for output in outputs.values())


def test_sequential_execution_commits_first_value():
    """A fully sequential schedule: the first process commits; everyone
    else must then agree with it."""
    outputs = run_commit_adopt({0: "a", 1: "b"}, seed=0)
    committed = {v for g, v in outputs.values() if g == "commit"}
    assert len(committed) <= 1


def test_outputs_are_proposals():
    outputs = run_commit_adopt({0: "x", 1: "y", 2: "x"}, seed=5)
    for _, value in outputs.values():
        assert value in {"x", "y"}


def test_checker_rejects_double_commit():
    with pytest.raises(AssertionError):
        check_commit_adopt_outputs(
            {0: "a", 1: "b"},
            {0: ("commit", "a"), 1: ("commit", "b")},
        )


def test_checker_rejects_invalid_value():
    with pytest.raises(AssertionError):
        check_commit_adopt_outputs(
            {0: "a", 1: "a"}, {0: ("commit", "z"), 1: ("commit", "z")}
        )


def test_checker_rejects_missed_convergence():
    with pytest.raises(AssertionError):
        check_commit_adopt_outputs(
            {0: "a", 1: "a"}, {0: ("adopt", "a"), 1: ("commit", "a")}
        )


@pytest.mark.parametrize("n", [2, 3, 4, 5])
def test_fuzz_many_sizes(n):
    fuzz_commit_adopt(n, runs=40, seed=n)


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_guarantees_hold_under_random_schedules(n, seed):
    import random

    rng = random.Random(seed)
    proposals = {pid: rng.choice(["a", "b", "c"]) for pid in range(n)}
    outputs = run_commit_adopt(proposals, seed=seed)
    check_commit_adopt_outputs(proposals, outputs)

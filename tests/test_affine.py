"""Unit tests for AffineTask (Section 2) and task iteration."""

import pytest

from repro.core.affine import (
    AffineTask,
    affine_model_prefixes,
    full_affine_task,
    lift_vertex,
)
from repro.topology.chromatic import ChromaticComplex, ChrVertex, chi
from repro.topology.subdivision import carrier_in_s, chr_complex


def test_full_affine_task_is_chr(chr1):
    task = full_affine_task(3, 1)
    assert task.complex == chr1
    assert task.depth == 1


def test_validation_rejects_empty():
    with pytest.raises(ValueError):
        AffineTask(3, 1, ChromaticComplex([]))


def test_validation_rejects_impure(chr1):
    facet = next(iter(chr1.facets))
    vertex = next(iter(facet))
    impure = ChromaticComplex([facet, frozenset([ChrVertex(9, frozenset({9}))])])
    with pytest.raises(ValueError):
        AffineTask(3, 1, impure)


def test_validation_rejects_foreign_complex():
    foreign = ChromaticComplex(
        [
            frozenset(
                {
                    ChrVertex(0, frozenset({5})),
                    ChrVertex(1, frozenset({5, 6})),
                    ChrVertex(2, frozenset({5, 6, 7})),
                }
            )
        ]
    )
    with pytest.raises(ValueError):
        AffineTask(3, 1, foreign)


def test_delta_full_face(rtres_1):
    delta = rtres_1.delta({0, 1, 2})
    assert delta == rtres_1.complex


def test_delta_restricts_carrier(rkof_1):
    delta = rkof_1.delta({0, 1})
    for sigma in delta.simplices:
        assert carrier_in_s(sigma) <= frozenset({0, 1})


def test_delta_can_be_empty(rtres_1):
    """R_{1-res} has no output carried by a single process — exactly
    the paper's remark that participation must grow first."""
    assert rtres_1.delta({0}).complex.is_empty()


def test_delta_nonempty_for_singleton_when_alpha_positive(rkof_1):
    assert not rkof_1.delta({0}).complex.is_empty()


def test_facets_for_participation(rkof_1):
    facets = rkof_1.facets_for_participation({0, 1})
    assert facets
    for facet in facets:
        assert chi(facet) == frozenset({0, 1})


def test_contains_run(rkof_1, chr2):
    inside = next(iter(rkof_1.complex.facets))
    assert rkof_1.contains_run(inside)
    outside = next(iter(chr2.facets - rkof_1.complex.facets))
    assert not rkof_1.contains_run(outside)


def test_lift_vertex_structure():
    # Lift a Chr s vertex through the synchronous facet of Chr s.
    sync_facet = {
        pid: ChrVertex(pid, frozenset({0, 1, 2})) for pid in range(3)
    }
    v = ChrVertex(0, frozenset({0, 1}))
    lifted = lift_vertex(v, sync_facet)
    assert lifted.color == 0
    assert lifted.carrier == frozenset(
        {sync_facet[0], sync_facet[1]}
    )


def test_iterate_identity():
    task = full_affine_task(2, 1)
    assert task.iterate(1) is task


def test_iterate_rejects_zero():
    with pytest.raises(ValueError):
        full_affine_task(2, 1).iterate(0)


def test_iterate_full_task_gives_chr_power():
    """Chr iterated as an affine task == Chr² (n = 2 keeps it small)."""
    task = full_affine_task(2, 1)
    squared = task.iterate(2)
    assert squared.depth == 2
    assert squared.complex == chr_complex(2, 2)


def test_compose_matches_facet_product_counts():
    task = full_affine_task(2, 1)
    squared = task.compose_with(task)
    assert len(squared.complex.facets) == 3 * 3


def test_compose_requires_same_n():
    with pytest.raises(ValueError):
        full_affine_task(2, 1).compose_with(full_affine_task(3, 1))


def test_affine_model_prefixes(rkof_1):
    prefixes = affine_model_prefixes(rkof_1, 1)
    assert prefixes == rkof_1.complex.facets


@pytest.mark.slow
def test_ra_squared_structure(rkof_1):
    """(R_{1-OF})² at n=3: 73² facets of Chr⁴ s, pure, full carriers."""
    squared = rkof_1.iterate(2)
    assert squared.depth == 4
    assert len(squared.complex.facets) == 73 * 73
    assert squared.complex.is_pure(2)
    for facet in list(squared.complex.facets)[:50]:
        assert carrier_in_s(facet) == frozenset({0, 1, 2})


def test_iterated_facets_stay_inside_ambient_subdivision():
    """(R_{1-OF})² facets live in Chr⁴ s — check carrier structure only
    for a sample (full ambient materialization is out of reach)."""
    from repro.core.rkof import r_k_obstruction_free

    task = r_k_obstruction_free(2, 1)
    squared = task.iterate(2)
    assert squared.depth == 4
    for facet in list(squared.complex.facets)[:10]:
        assert carrier_in_s(facet) == frozenset({0, 1})

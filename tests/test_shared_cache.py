"""The shared-memory artifact read layer and its cache integration.

The segment is an accelerator, never an authority: every test that
corrupts, truncates or fills it asserts two things — the anomaly is
detected (the process stops trusting the segment) *and* the on-disk
store still answers correctly.  The cross-process test is the layer's
reason to exist: two unrelated processes attached to one cache
directory must read byte-identical artifact values out of one mmap.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.engine import MISS, ArtifactCache, digest, serialize
from repro.topology import chr_complex
from repro.workers.shm import SharedArtifactSegment


@pytest.fixture
def segment_path(tmp_path):
    return tmp_path / "artifacts.shm"


# ----------------------------------------------------------------------
# Segment primitives
# ----------------------------------------------------------------------
def test_segment_round_trip(segment_path):
    segment = SharedArtifactSegment(segment_path)
    key = digest("round-trip")
    assert segment.usable
    assert segment.get_text(key) is None
    assert segment.put_text(key, '["hello"]')
    assert segment.get_text(key) == '["hello"]'
    stats = segment.stats()
    assert stats["published"] == 1 and stats["hits"] == 1
    segment.close()


def test_second_attachment_sees_committed_records(segment_path):
    writer = SharedArtifactSegment(segment_path)
    key = digest("cross-attach")
    writer.put_text(key, "[1,2,3]")
    reader = SharedArtifactSegment(segment_path)
    assert reader.get_text(key) == "[1,2,3]"
    writer.close()
    reader.close()


def test_torn_payload_is_detected_and_distrusted(segment_path):
    writer = SharedArtifactSegment(segment_path)
    key = digest("torn")
    writer.put_text(key, '["payload that will be torn"]')
    offset, length, _crc = writer._index[key]
    writer.close()

    # Flip committed payload bytes behind every reader's back.
    with open(segment_path, "r+b") as handle:
        handle.seek(offset)
        handle.write(b"X" * min(4, length))

    reader = SharedArtifactSegment(segment_path)
    assert reader.get_text(key) is None
    assert not reader.usable  # latched: one torn record poisons trust
    assert reader.stats()["corruption_detected"] >= 1
    reader.close()


def test_truncated_segment_attaches_unusable(segment_path):
    writer = SharedArtifactSegment(segment_path)
    writer.put_text(digest("pre-truncation"), "[0]")
    writer.close()
    with open(segment_path, "r+b") as handle:
        handle.truncate(128)  # declared capacity no longer backed
    reader = SharedArtifactSegment(segment_path)
    assert not reader.usable
    assert reader.get_text(digest("pre-truncation")) is None
    reader.close()


def test_bad_magic_attaches_unusable(segment_path):
    segment_path.write_bytes(b"NOTASEGM" + b"\x00" * 1024)
    reader = SharedArtifactSegment(segment_path)
    assert not reader.usable
    reader.close()


def test_full_segment_rejects_without_breaking(segment_path):
    segment = SharedArtifactSegment(segment_path, capacity=256)
    key_small = digest("fits")
    assert segment.put_text(key_small, "[1]")
    key_large = digest("does-not-fit")
    assert not segment.put_text(key_large, "x" * 4096)
    assert segment.usable  # full is a capacity condition, not corruption
    assert segment.stats()["rejected_full"] == 1
    assert segment.get_text(key_small) == "[1]"
    segment.close()


def test_reset_rewinds_the_committed_cursor(segment_path):
    segment = SharedArtifactSegment(segment_path)
    key = digest("resettable")
    segment.put_text(key, "[7]")
    segment.reset()
    assert segment.get_text(key) is None
    assert segment.put_text(key, "[8]")
    assert segment.get_text(key) == "[8]"
    segment.close()


# ----------------------------------------------------------------------
# ArtifactCache integration
# ----------------------------------------------------------------------
def test_shared_layer_is_off_by_default(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache._shared is None
    assert cache.shared_stats() is None


def test_env_var_opts_in(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SHARED_CACHE", "1")
    assert ArtifactCache(tmp_path)._shared is not None
    monkeypatch.setenv("REPRO_SHARED_CACHE", "0")
    assert ArtifactCache(tmp_path)._shared is None
    monkeypatch.delenv("REPRO_SHARED_CACHE")
    assert ArtifactCache(tmp_path)._shared is None


def test_shared_hit_serves_after_disk_object_vanishes(tmp_path):
    writer = ArtifactCache(tmp_path, shared=True)
    key = digest("shared-served")
    value = chr_complex(3, 1)
    writer.put(key, value)
    writer._path(key).unlink()  # the segment is now the only copy

    reader = ArtifactCache(tmp_path, shared=True)
    assert reader.get(key) == value
    assert reader.shared_hits == 1
    # Without the shared layer the same lookup is a miss.
    assert ArtifactCache(tmp_path).get(key) is MISS


def test_disk_hits_are_published_for_later_readers(tmp_path):
    plain = ArtifactCache(tmp_path)
    key = digest("promoted")
    plain.put(key, (1, 2, 3))

    warmer = ArtifactCache(tmp_path, shared=True)
    assert warmer.get(key) == (1, 2, 3)
    assert warmer.shared_hits == 0  # came from disk ...
    assert warmer.shared_stats()["published"] == 1  # ... and was mirrored

    reader = ArtifactCache(tmp_path, shared=True)
    assert reader.get(key) == (1, 2, 3)
    assert reader.shared_hits == 1


def test_repeat_hits_use_the_hot_memo(tmp_path):
    cache = ArtifactCache(tmp_path, shared=True)
    key = digest("memoized")
    cache.put(key, (9, 9))
    first = cache.get(key)
    second = cache.get(key)
    assert first == second == (9, 9)
    assert first is second  # same deserialized object, not a re-decode


def test_torn_segment_falls_back_to_disk(tmp_path):
    writer = ArtifactCache(tmp_path, shared=True)
    key = digest("fallback")
    writer.put(key, ("disk", "is", "authority"))
    offset, length, _crc = writer._shared._index[key]
    writer._shared.close()

    with open(tmp_path / "shared" / "artifacts.shm", "r+b") as handle:
        handle.seek(offset)
        handle.write(b"Z" * min(4, length))

    reader = ArtifactCache(tmp_path, shared=True)
    assert reader.get(key) == ("disk", "is", "authority")
    assert reader.shared_hits == 0
    assert not reader._shared.usable


def test_full_segment_cache_still_serves_from_disk(tmp_path):
    cache = ArtifactCache(tmp_path, shared=True, shared_capacity=256)
    key = digest("oversize")
    cache.put(key, list(range(2000)))  # too large for the tiny segment
    assert cache.shared_stats()["rejected_full"] >= 1
    fresh = ArtifactCache(tmp_path, shared=True, shared_capacity=256)
    assert fresh.get(key) == list(range(2000))
    assert fresh.shared_hits == 0


def test_clear_resets_the_segment_too(tmp_path):
    cache = ArtifactCache(tmp_path, shared=True)
    key = digest("cleared")
    cache.put(key, (1,))
    assert cache.clear() == 1
    assert cache.get(key) is MISS
    assert cache.shared_stats()["indexed"] == 0


# ----------------------------------------------------------------------
# Cross-process
# ----------------------------------------------------------------------
def _read_shared(root, key, queue):
    cache = ArtifactCache(root, shared=True)
    value = cache.get(key)
    queue.put((serialize(value), cache.shared_hits))


def test_two_processes_read_byte_identical_values(tmp_path):
    writer = ArtifactCache(tmp_path, shared=True)
    key = digest("cross-process")
    value = chr_complex(3, 1)
    writer.put(key, value)
    writer._path(key).unlink()  # force both readers through the segment

    queue = multiprocessing.get_context().Queue()
    readers = [
        multiprocessing.get_context().Process(
            target=_read_shared, args=(tmp_path, key, queue)
        )
        for _ in range(2)
    ]
    for process in readers:
        process.start()
    texts = [queue.get(timeout=30) for _ in readers]
    for process in readers:
        process.join(timeout=30)
        assert process.exitcode == 0

    (text_a, hits_a), (text_b, hits_b) = texts
    assert text_a == text_b == serialize(value)
    assert hits_a == 1 and hits_b == 1  # both served from the segment

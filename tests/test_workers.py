"""The persistent worker pool: lifecycle, affinity, and failure paths.

These tests exercise :class:`repro.workers.WorkerPool` directly (the
typed ``start/submit/drain/close`` surface) and through the engine.
The failure-path tests are the load-bearing ones: a SIGKILLed worker
must be restarted with its job re-dispatched *exactly once*, a job
whose payload the codec rejects must fail alone, and ``drain()`` under
load must complete every accepted job.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.engine import Engine, JobSpec
from repro.engine.executor import execute_batch
from repro.solver import SolveRequest
from repro.tasks.set_consensus import set_consensus_task
from repro.workers import WorkerPool, affinity_key, decompose, recompose


@pytest.fixture
def task23():
    return set_consensus_task(3, 2)


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
def test_wire_round_trips_solve_payloads(ra_1res, task23):
    request = SolveRequest(affine=ra_1res, task=task23, budget=77)
    shared, delta = decompose("solve", (request,))
    assert shared == [ra_1res, task23]
    assert recompose("solve", shared, delta) == (request,)


def test_wire_round_trips_generic_payloads():
    payload = (3, 1)
    shared, delta = decompose("chr", payload)
    assert shared == []
    assert recompose("chr", shared, delta) == payload


def test_wire_affinity_key_only_for_setup_carrying_kinds(ra_1res, task23):
    request = SolveRequest(affine=ra_1res, task=task23)
    key = affinity_key("solve", (request,))
    assert key is not None
    # certify against the same setup routes to the same warm worker.
    assert affinity_key("certify", (ra_1res, task23, None)) == key
    assert affinity_key("chr", (3, 1)) is None
    assert affinity_key("sleep", (0.1, "x")) is None


# ----------------------------------------------------------------------
# Lifecycle and parity
# ----------------------------------------------------------------------
def test_run_batch_matches_in_process_and_preserves_order():
    specs = [JobSpec("chr", (3, 1)), JobSpec("chr", (2, 1))]
    with WorkerPool(2) as pool:
        results = pool.run_batch(list(enumerate(specs)))
    assert [result.index for result in results] == [0, 1]
    assert [result.value for result in results] == [
        spec.run() for spec in specs
    ]
    assert all(result.ok for result in results)


def test_pool_survives_across_engine_batches():
    engine = Engine(jobs=2)
    try:
        engine.run_jobs([JobSpec("chr", (3, 1)), JobSpec("chr", (2, 1))])
        pool = engine._pool
        assert pool is not None
        first_pids = sorted(pool.pids())
        engine.run_jobs([JobSpec("chr", (4, 1)), JobSpec("chr", (2, 2))])
        assert engine._pool is pool
        assert sorted(pool.pids()) == first_pids  # no respawn between batches
    finally:
        engine.close()


def test_engine_close_is_reopenable():
    engine = Engine(jobs=2)
    (first,) = engine.run_jobs([JobSpec("chr", (2, 1)), JobSpec("chr", (2, 2))])[:1]
    engine.close()
    assert engine.worker_stats() is None
    # A batch after close starts a fresh pool transparently.
    (again,) = engine.run_jobs([JobSpec("chr", (2, 1)), JobSpec("chr", (2, 2))])[:1]
    assert again.value == first.value
    assert engine.worker_stats() is not None
    engine.close()


def test_pool_close_is_idempotent_and_restartable():
    pool = WorkerPool(2)
    pool.start()
    assert len(pool.pids()) == 2
    pool.close()
    pool.close()
    assert pool.pids() == []
    # submit() auto-starts a closed pool.
    ticket = pool.submit(JobSpec("chr", (2, 1)))
    pool.drain()
    assert ticket.result.ok
    pool.close()


# ----------------------------------------------------------------------
# Affinity routing
# ----------------------------------------------------------------------
def test_repeat_setups_pin_to_one_warm_worker(ra_1of, task23):
    requests = [
        SolveRequest(affine=ra_1of, task=task23) for _ in range(4)
    ]
    with WorkerPool(2) as pool:
        for index, request in enumerate(requests):
            pool.submit(JobSpec("solve", (request,)), index=index)
            # Drain between submissions: the interesting property is
            # that *later batches* land on the worker whose setup is
            # warm, not intra-batch behaviour (a backed-up home worker
            # is allowed to spill).
            pool.drain()
        stats = pool.stats()
    assert stats["affinity_routed"] == 4
    # The first submission establishes the pin; every later one hits it.
    assert stats["affinity_hits"] == 3
    assert stats["affinity_hit_rate"] == 0.75
    assert stats["completed"] == 4


def test_distinct_setups_do_not_count_as_hits(ra_1of, ra_1res, task23):
    with WorkerPool(2) as pool:
        pool.submit(JobSpec("solve", (SolveRequest(affine=ra_1of, task=task23),)))
        pool.submit(JobSpec("solve", (SolveRequest(affine=ra_1res, task=task23),)))
        pool.drain()
        stats = pool.stats()
    assert stats["affinity_routed"] == 2
    assert stats["affinity_hits"] == 0


# ----------------------------------------------------------------------
# Failure paths
# ----------------------------------------------------------------------
def test_sigkilled_worker_restarts_and_job_redispatches_exactly_once():
    with WorkerPool(2) as pool:
        ticket = pool.submit(JobSpec("sleep", (0.5, "survivor")))
        assert ticket.worker is not None  # dispatched immediately
        victim_pid = pool.pids()[ticket.worker]
        time.sleep(0.05)  # let the worker enter the sleep
        os.kill(victim_pid, signal.SIGKILL)
        pool.drain()
        stats = pool.stats()
        assert ticket.result.ok
        assert ticket.result.value == "survivor"
        assert ticket.redispatched == 1
    assert stats["worker_restarts"] == 1
    assert stats["redispatched"] == 1
    assert stats["completed"] == 1


def test_crashing_job_fails_alone_after_bounded_redispatch():
    specs = [
        JobSpec("crash", (9,)),
        JobSpec("chr", (3, 1)),
        JobSpec("chr", (2, 1)),
    ]
    with WorkerPool(2) as pool:
        results = pool.run_batch(list(enumerate(specs)))
        stats = pool.stats()
    crash, good_a, good_b = results
    assert not crash.ok
    assert "worker died while running crash job" in crash.error
    assert "re-dispatched 1 time(s)" in crash.error
    assert good_a.ok and good_a.value == specs[1].run()
    assert good_b.ok and good_b.value == specs[2].run()
    # Initial dispatch + one re-dispatch, each killing its worker.
    assert stats["worker_restarts"] == 2
    assert stats["redispatched"] == 1


def test_poisoned_payload_fails_alone_at_submit_time():
    with WorkerPool(2) as pool:
        poisoned = pool.submit(JobSpec("sleep", (0.01, object())), index=0)
        healthy = pool.submit(JobSpec("chr", (2, 1)), index=1)
        # The codec rejected it before any worker saw it.
        assert poisoned.done and not poisoned.result.ok
        pool.drain()
        stats = pool.stats()
    assert healthy.result.ok
    assert stats["codec_errors"] == 1
    assert stats["worker_restarts"] == 0


def test_drain_under_load_completes_every_accepted_job():
    specs = []
    for round_index in range(5):
        specs.append(JobSpec("sleep", (0.01, f"s{round_index}")))
        specs.append(JobSpec("chr", (2, 1 + round_index % 2)))
    with WorkerPool(2) as pool:
        tickets = [
            pool.submit(spec, index=index)
            for index, spec in enumerate(specs)
        ]
        pool.drain()
        stats = pool.stats()
    assert all(ticket.done for ticket in tickets)
    assert all(ticket.result.ok for ticket in tickets)
    assert stats["completed"] == len(specs)
    assert stats["dispatched"] >= len(specs)


def test_timeout_kills_worker_and_pool_stays_usable():
    with WorkerPool(1, timeout=0.3) as pool:
        stuck = pool.submit(JobSpec("sleep", (30.0, "never")))
        pool.drain()
        assert stuck.result.error == "timeout"
        after = pool.submit(JobSpec("chr", (2, 1)))
        pool.drain()
        stats = pool.stats()
    assert after.result.ok
    assert stats["timeouts"] == 1
    assert stats["worker_restarts"] == 1


def test_close_resolves_unfinished_jobs_as_errors():
    pool = WorkerPool(1)
    ticket = pool.submit(JobSpec("sleep", (30.0, "abandoned")))
    pool.close()
    assert ticket.done
    assert ticket.result.error == "worker pool closed"


# ----------------------------------------------------------------------
# Legacy shim
# ----------------------------------------------------------------------
def test_execute_batch_shim_warns_and_matches():
    specs = [JobSpec("chr", (3, 1)), JobSpec("chr", (2, 1))]
    with pytest.warns(DeprecationWarning, match="execute_batch"):
        results = execute_batch(list(enumerate(specs)), jobs=2)
    assert [result.value for result in results] == [
        spec.run() for spec in specs
    ]

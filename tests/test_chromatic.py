"""Unit tests for repro.topology.chromatic."""

import pytest

from repro.topology.chromatic import (
    ChromaticComplex,
    ChrVertex,
    chi,
    color_of,
    is_rainbow,
    standard_simplex,
)


def test_ints_are_their_own_color():
    assert color_of(2) == 2


def test_chr_vertex_color():
    v = ChrVertex(1, frozenset({0, 1}))
    assert color_of(v) == 1


def test_color_of_rejects_uncolored():
    with pytest.raises(TypeError):
        color_of("process")


def test_chi_collects_colors():
    sigma = {ChrVertex(0, frozenset({0})), ChrVertex(2, frozenset({0, 2}))}
    assert chi(sigma) == frozenset({0, 2})


def test_is_rainbow():
    assert is_rainbow({0, 1, 2})
    assert is_rainbow(
        {ChrVertex(0, frozenset({0})), ChrVertex(1, frozenset({0, 1}))}
    )
    assert not is_rainbow(
        {ChrVertex(0, frozenset({0})), ChrVertex(0, frozenset({0, 1}))}
    )


def test_chromatic_complex_rejects_color_collisions():
    with pytest.raises(ValueError):
        ChromaticComplex(
            [{ChrVertex(0, frozenset({0})), ChrVertex(0, frozenset({0, 1}))}]
        )


def test_standard_simplex():
    s = standard_simplex(3)
    assert s.dimension == 2
    assert s.colors() == frozenset({0, 1, 2})
    assert s.vertices == frozenset({0, 1, 2})


def test_standard_simplex_requires_processes():
    with pytest.raises(ValueError):
        standard_simplex(0)


def test_vertices_of_color(chr1):
    for color in range(3):
        owned = chr1.vertices_of_color(color)
        assert owned
        assert all(color_of(v) == color for v in owned)


def test_chr1_vertex_count_by_color(chr1):
    # Chr s for n=3: each process owns 4 vertices (one per face
    # containing it: itself, two edges, the triangle).
    for color in range(3):
        assert len(chr1.vertices_of_color(color)) == 4


def test_restrict_colors(chr1):
    sub = chr1.restrict_colors({0, 1})
    assert sub.colors() <= frozenset({0, 1})
    assert all(len(sigma) <= 2 for sigma in sub.simplices)


def test_skeleton_preserves_coloring(chr1):
    skel = chr1.skeleton(1)
    assert skel.dimension == 1
    assert skel.colors() == frozenset({0, 1, 2})


def test_equality_and_hash():
    a = standard_simplex(3)
    b = standard_simplex(3)
    assert a == b
    assert hash(a) == hash(b)

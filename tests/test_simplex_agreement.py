"""Tests for simplex agreement and affine-task-as-task adapters."""


from repro.tasks.simplex_agreement import (
    affine_task_as_task,
    chromatic_simplex_agreement,
    is_valid_agreement,
)
from repro.tasks.task import OutputVertex


def test_affine_task_as_task_validates(rkof_1):
    task = affine_task_as_task(rkof_1)
    task.validate()


def test_task_outputs_wrap_vertices(rkof_1):
    task = affine_task_as_task(rkof_1)
    full = frozenset(range(3))
    for sigma in list(task.allowed_outputs(full))[:20]:
        for out in sigma:
            assert out.process == out.value.color


def test_chromatic_simplex_agreement_is_is_task(chr1):
    task = chromatic_simplex_agreement(3, 1)
    full = frozenset(range(3))
    # Every facet of Chr s appears as a full allowed output.
    full_outputs = {
        frozenset(out.value for out in sigma)
        for sigma in task.allowed_outputs(full)
        if len(sigma) == 3
    }
    assert full_outputs == chr1.facets


def test_is_valid_agreement_accepts_facets(rtres_1):
    for facet in list(rtres_1.complex.facets)[:10]:
        assert is_valid_agreement(rtres_1, frozenset(range(3)), facet)


def test_is_valid_agreement_rejects_carrier_violation(rtres_1):
    # A facet carried by all three processes is not allowed when only
    # two participate.
    facet = next(iter(rtres_1.complex.facets))
    assert not is_valid_agreement(rtres_1, frozenset({0, 1}), facet)


def test_is_valid_agreement_rejects_foreign_simplices(rtres_1, chr2):
    outside = next(
        iter(chr2.facets - rtres_1.complex.facets)
    )
    assert not is_valid_agreement(rtres_1, frozenset(range(3)), outside)


def test_is_valid_agreement_rejects_empty(rtres_1):
    assert not is_valid_agreement(
        rtres_1, frozenset(range(3)), frozenset()
    )


def test_delta_of_affine_task_matches_restriction(rkof_1):
    task = affine_task_as_task(rkof_1)
    for participants in [frozenset({0}), frozenset({0, 2})]:
        allowed = task.allowed_outputs(participants)
        expected = {
            frozenset(OutputVertex(v.color, v) for v in sigma)
            for sigma in rkof_1.delta(participants).simplices
        }
        assert allowed == expected

"""Tests for k-test-and-set / leader election (E21)."""

import pytest

from repro.adversaries import k_concurrency_alpha, t_resilience_alpha
from repro.core import full_affine_task, r_affine
from repro.tasks.solvability import MapSearch, find_carried_map
from repro.tasks.test_and_set import (
    LOSE,
    WIN,
    k_test_and_set_outputs,
    k_test_and_set_task,
    leader_election_task,
    winners,
)
from repro.tasks.task import OutputVertex


def test_bounds():
    with pytest.raises(ValueError):
        k_test_and_set_task(3, 0)
    with pytest.raises(ValueError):
        k_test_and_set_task(3, 4)


def test_tasks_validate():
    for k in (1, 2, 3):
        k_test_and_set_task(3, k).validate()


def test_full_outputs_have_bounded_winners():
    outputs = k_test_and_set_outputs(frozenset({0, 1, 2}), 2)
    for sigma in outputs:
        if len(sigma) == 3:
            count = len(winners(sigma))
            assert 1 <= count <= 2


def test_leader_election_full_outputs_have_one_winner():
    outputs = k_test_and_set_outputs(frozenset({0, 1, 2}), 1)
    for sigma in outputs:
        if len(sigma) == 3:
            assert len(winners(sigma)) == 1


def test_all_lose_faces_allowed():
    outputs = k_test_and_set_outputs(frozenset({0, 1, 2}), 1)
    all_lose_pair = frozenset(
        {OutputVertex(0, LOSE), OutputVertex(1, LOSE)}
    )
    assert all_lose_pair in outputs


def test_all_lose_full_output_forbidden():
    outputs = k_test_and_set_outputs(frozenset({0, 1, 2}), 3)
    all_lose = frozenset(OutputVertex(p, LOSE) for p in range(3))
    assert all_lose not in outputs


def test_solo_participant_must_win():
    outputs = k_test_and_set_outputs(frozenset({1}), 1)
    assert frozenset({OutputVertex(1, WIN)}) in outputs
    assert frozenset({OutputVertex(1, LOSE)}) not in outputs


def test_leader_election_solvable_only_with_consensus_power():
    assert (
        find_carried_map(
            r_affine(k_concurrency_alpha(3, 1)), leader_election_task(3)
        )
        is not None
    )
    assert (
        find_carried_map(
            r_affine(k_concurrency_alpha(3, 2)), leader_election_task(3)
        )
        is None
    )
    assert (
        find_carried_map(full_affine_task(3, 1), leader_election_task(3))
        is None
    )


def test_ktas_threshold_matches_setcon():
    """k-TAS solvable from R_A at one shot iff k >= setcon(A)."""
    cases = [
        (r_affine(k_concurrency_alpha(3, 1)), 1),
        (r_affine(k_concurrency_alpha(3, 2)), 2),
        (r_affine(t_resilience_alpha(3, 1)), 2),
    ]
    for affine, power in cases:
        for k in (1, 2, 3):
            solvable = (
                MapSearch(affine, k_test_and_set_task(3, k)).search()
                is not None
            )
            assert solvable == (k >= power), (affine.name, k)


def test_found_map_winner_structure():
    """In a found 1-TAS map on R_{1-OF}, every facet has exactly one
    winner."""
    affine = r_affine(k_concurrency_alpha(3, 1))
    mapping = find_carried_map(affine, leader_election_task(3))
    for facet in affine.complex.facets:
        image = frozenset(mapping[v] for v in facet)
        assert len(winners(image)) == 1

"""Kill-and-resume: SIGKILL a sweep mid-grid, resume, compare artifacts.

This is the acceptance test for the sweep subsystem's central promise:
progress persists after every completed cell, so even an uncatchable
SIGKILL loses at most the in-flight cell, and the artifact a resumed
run finally produces is byte-for-byte identical to an uninterrupted
run's.  The sweep runs as a real ``python -m repro sweep`` subprocess —
no in-process shortcuts — throttled via ``REPRO_SWEEP_CELL_DELAY`` so
the kill reliably lands mid-grid.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GRID = "n3-smoke"
GRID_CELLS = 12  # |sample_adversaries(3, 7, 6)| x |ks=(1, 2)|


def _env(cell_delay: float = 0.0) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if cell_delay:
        env["REPRO_SWEEP_CELL_DELAY"] = str(cell_delay)
    else:
        env.pop("REPRO_SWEEP_CELL_DELAY", None)
    return env


def _sweep_command(checkpoint_dir: Path, artifact: Path, *extra: str) -> list:
    return [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "--grid",
        GRID,
        "--checkpoint-dir",
        str(checkpoint_dir),
        "--output",
        str(artifact),
        *extra,
    ]


def test_sigkilled_sweep_resumes_to_byte_identical_artifact(tmp_path):
    # 1. The reference: one uninterrupted run.
    straight_art = tmp_path / "straight.json"
    completed = subprocess.run(
        _sweep_command(tmp_path / "straight", straight_art),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    reference = straight_art.read_bytes()

    # 2. The victim: same grid, throttled, SIGKILLed once >= 2 cells
    #    (but not all of them) are checkpointed.
    killed_dir = tmp_path / "killed"
    killed_art = tmp_path / "killed.json"
    stub_dir = killed_dir / "cells"
    victim = subprocess.Popen(
        _sweep_command(killed_dir, killed_art),
        env=_env(cell_delay=0.5),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            stubs = list(stub_dir.glob("*.json")) if stub_dir.is_dir() else []
            if len(stubs) >= 2:
                break
            assert victim.poll() is None, "sweep finished before the kill"
            time.sleep(0.05)
        else:
            raise AssertionError("no checkpoints appeared before deadline")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()
    assert victim.returncode == -signal.SIGKILL
    survivors = len(list(stub_dir.glob("*.json")))
    assert 2 <= survivors < GRID_CELLS
    assert not killed_art.exists()

    # 3. Resume from the checkpoint; the artifact must match byte for byte.
    resumed = subprocess.run(
        _sweep_command(killed_dir, killed_art, "--resume"),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert "resumed from checkpoint" in resumed.stdout
    assert killed_art.read_bytes() == reference


def test_rerun_without_resume_flag_is_refused(tmp_path):
    first = subprocess.run(
        _sweep_command(tmp_path / "ckpt", tmp_path / "a.json", "--limit", "1"),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert first.returncode == 2, first.stdout + first.stderr
    again = subprocess.run(
        _sweep_command(tmp_path / "ckpt", tmp_path / "a.json"),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert again.returncode != 0
    assert "--resume" in again.stdout + again.stderr

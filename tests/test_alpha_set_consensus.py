"""Theorem 2 operationalized: α-adaptive set consensus in the α-model."""

import random

import pytest

from repro.protocols.alpha_set_consensus import (
    fuzz_alpha_set_consensus,
    run_alpha_set_consensus,
)
from repro.runtime.scheduler import ExecutionPlan, random_alpha_model_plan

FULL = frozenset({0, 1, 2})


@pytest.mark.parametrize(
    "alpha_fixture",
    ["alpha_1of", "alpha_2of", "alpha_1res", "alpha_fig5b", "alpha_wf"],
)
def test_fuzzed_runs_satisfy_spec(request, alpha_fixture):
    alpha = request.getfixturevalue(alpha_fixture)
    outcomes = fuzz_alpha_set_consensus(alpha, runs=40, seed=9)
    assert len(outcomes) == 40


def test_consensus_under_1of(alpha_1of):
    """alpha(P) = 1 everywhere: the object is consensus."""
    outcomes = fuzz_alpha_set_consensus(alpha_1of, runs=40, seed=11)
    assert all(o.distinct_decisions() == 1 for o in outcomes)


def test_leaders_are_participants(alpha_1res):
    rng = random.Random(3)
    for _ in range(20):
        plan = random_alpha_model_plan(alpha_1res, rng)
        proposals = {pid: pid * 10 for pid in range(3)}
        outcome = run_alpha_set_consensus(alpha_1res, plan, proposals)
        for pid, leader in outcome.leaders.items():
            assert leader in plan.participants
            assert outcome.decisions[pid] == proposals[leader]


def test_full_run_decides_everywhere(alpha_fig5b):
    plan = ExecutionPlan(participants=FULL, faulty=frozenset(), seed=4)
    proposals = {0: "a", 1: "b", 2: "c"}
    outcome = run_alpha_set_consensus(alpha_fig5b, plan, proposals)
    assert set(outcome.decisions) == set(FULL)
    assert outcome.distinct_decisions() <= 2


def test_bound_reachable(alpha_fig5b):
    """Some execution realizes 2 distinct decisions (the bound)."""
    rng = random.Random(17)
    maxima = 0
    for _ in range(60):
        plan = random_alpha_model_plan(alpha_fig5b, rng)
        proposals = {pid: f"v{pid}" for pid in range(3)}
        outcome = run_alpha_set_consensus(alpha_fig5b, plan, proposals)
        maxima = max(maxima, outcome.distinct_decisions())
    assert maxima == 2


def test_crash_tolerant(alpha_1res):
    plan = ExecutionPlan(
        participants=FULL,
        faulty=frozenset({1}),
        crash_after_steps={1: 5},
        seed=23,
    )
    proposals = {0: "x", 1: "y", 2: "z"}
    outcome = run_alpha_set_consensus(alpha_1res, plan, proposals)
    assert frozenset({0, 2}) <= frozenset(outcome.decisions)

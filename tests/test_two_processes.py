"""The complete 2-process world, end to end.

At n = 2 everything is small enough to sweep every adversary (7 of
them) through the entire pipeline — classification, affine task,
solvability, Algorithm 1 — with exact expectations computed by hand:

* live sets: subsets of {{0}, {1}, {0,1}};
* `Chr s` is a path of 3 edges, `Chr² s` a path of 9;
* consensus is solvable exactly when setcon = 1.
"""

from itertools import combinations

import pytest

from repro.adversaries import (
    Adversary,
    agreement_function_of,
    is_fair,
    setcon,
)
from repro.core import r_affine
from repro.runtime.algorithm1 import fuzz_algorithm1
from repro.tasks import minimal_set_consensus
from repro.topology import chr_complex, fubini_number


def all_two_process_adversaries():
    subsets = [frozenset({0}), frozenset({1}), frozenset({0, 1})]
    for count in range(1, 4):
        for collection in combinations(subsets, count):
            yield Adversary(2, collection)


ADVERSARIES = list(all_two_process_adversaries())


def test_seven_adversaries():
    assert len(ADVERSARIES) == 7


def test_chr_sizes():
    assert len(chr_complex(2, 1).facets) == fubini_number(2) == 3
    assert len(chr_complex(2, 2).facets) == 9


def test_fairness_census():
    fair = [a for a in ADVERSARIES if is_fair(a)]
    # Unfair at n=2: exactly the two single-solo-live-set adversaries
    # {{0}} and {{1}} (the other process's coalition beats alpha).
    unfair = [a for a in ADVERSARIES if not is_fair(a)]
    assert len(unfair) == 2
    for adversary in unfair:
        assert len(adversary) == 1
        (live,) = adversary.live_sets
        assert len(live) == 1


@pytest.mark.parametrize(
    "adversary", ADVERSARIES, ids=[repr(sorted(map(sorted, a.live_sets))) for a in ADVERSARIES]
)
def test_pipeline_every_fair_adversary(adversary):
    if not is_fair(adversary):
        return
    power = setcon(adversary)
    alpha = agreement_function_of(adversary)
    task = r_affine(alpha)
    assert task.complex.is_pure(1)
    # FACT: minimal set consensus from one shot equals setcon.
    assert minimal_set_consensus(task) == power
    # Algorithm 1 under fuzzing.
    outcomes = fuzz_algorithm1(alpha, task, runs=30, seed=5)
    assert all(outcome.in_affine_task for outcome in outcomes)


def test_consensus_solvable_exactly_at_power_one():
    for adversary in ADVERSARIES:
        if not is_fair(adversary):
            continue
        from repro.tasks import solves_set_consensus

        task = r_affine(agreement_function_of(adversary))
        assert solves_set_consensus(task, 1) == (setcon(adversary) == 1)


def test_wait_free_two_process_task_is_whole_chr2():
    from repro.adversaries import wait_free

    task = r_affine(agreement_function_of(wait_free(2)))
    assert task.complex == chr_complex(2, 2)


def test_one_obstruction_free_two_processes():
    """2-process 1-OF: consensus solvable; the affine task drops the
    contending middle runs."""
    from repro.adversaries import k_obstruction_free

    adversary = k_obstruction_free(2, 1)
    task = r_affine(agreement_function_of(adversary))
    assert len(task.complex.facets) < 9
    assert minimal_set_consensus(task) == 1

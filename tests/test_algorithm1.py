"""Experiment E8: Algorithm 1 solves R_A in the α-model (Theorem 7)."""

import random

import pytest

from repro.runtime.algorithm1 import fuzz_algorithm1, run_algorithm1
from repro.runtime.scheduler import ExecutionPlan, random_alpha_model_plan
from repro.topology.chromatic import ChrVertex


FULL = frozenset({0, 1, 2})


def full_run_plan(seed=0):
    return ExecutionPlan(participants=FULL, faulty=frozenset(), seed=seed)


def test_failure_free_run_lands_in_ra(alpha_1res, ra_1res):
    outcome = run_algorithm1(alpha_1res, full_run_plan(), ra_1res)
    assert outcome.in_affine_task
    assert outcome.result.decided() == FULL


def test_outputs_form_chr2_simplex(alpha_1res, chr2):
    outcome = run_algorithm1(alpha_1res, full_run_plan(3))
    assert outcome.simplex in chr2
    assert len(outcome.simplex) == 3


def test_outputs_to_simplex_structure(alpha_wf):
    outcome = run_algorithm1(alpha_wf, full_run_plan(1))
    for vertex in outcome.simplex:
        assert isinstance(vertex, ChrVertex)
        assert all(isinstance(w, ChrVertex) for w in vertex.carrier)


@pytest.mark.parametrize("seed", range(5))
def test_fuzz_wait_free(alpha_wf, seed):
    from repro.core import full_affine_task

    fuzz_algorithm1(alpha_wf, full_affine_task(3, 2), runs=20, seed=seed)


@pytest.mark.parametrize(
    "alpha_fixture,ra_fixture",
    [
        ("alpha_1of", "ra_1of"),
        ("alpha_2of", "ra_2of"),
        ("alpha_1res", "ra_1res"),
        ("alpha_fig5b", "ra_fig5b"),
    ],
)
def test_fuzz_zoo_models(request, alpha_fixture, ra_fixture):
    alpha = request.getfixturevalue(alpha_fixture)
    task = request.getfixturevalue(ra_fixture)
    outcomes = fuzz_algorithm1(alpha, task, runs=80, seed=42)
    assert len(outcomes) == 80
    assert all(outcome.in_affine_task for outcome in outcomes)


def test_crash_heavy_runs(alpha_1res, ra_1res):
    """Maximal faults allowed by the α-model at full participation."""
    plan = ExecutionPlan(
        participants=FULL,
        faulty=frozenset({2}),
        crash_after_steps={2: 0},  # crash before any step
        seed=13,
    )
    outcome = run_algorithm1(alpha_1res, plan, ra_1res)
    assert outcome.in_affine_task
    assert frozenset({0, 1}) <= outcome.result.decided()


def test_crash_mid_wait_phase(alpha_1res, ra_1res):
    plan = ExecutionPlan(
        participants=FULL,
        faulty=frozenset({0}),
        crash_after_steps={0: 12},
        seed=29,
    )
    outcome = run_algorithm1(alpha_1res, plan, ra_1res)
    assert outcome.in_affine_task


def test_small_participation(alpha_2of, ra_2of):
    plan = ExecutionPlan(
        participants=frozenset({1}), faulty=frozenset(), seed=5
    )
    outcome = run_algorithm1(alpha_2of, plan, ra_2of)
    assert outcome.in_affine_task
    assert outcome.result.decided() == frozenset({1})


def test_partial_outputs_are_faces(alpha_1res, ra_1res):
    """Outputs of only the decided processes form a face of some facet
    of R_A — crashes may truncate the simplex but never leave the
    complex."""
    rng = random.Random(77)
    for _ in range(30):
        plan = random_alpha_model_plan(alpha_1res, rng)
        outcome = run_algorithm1(alpha_1res, plan, ra_1res)
        assert outcome.in_affine_task


def test_decisions_within_participants(alpha_fig5b, ra_fig5b):
    rng = random.Random(123)
    for _ in range(20):
        plan = random_alpha_model_plan(alpha_fig5b, rng)
        outcome = run_algorithm1(alpha_fig5b, plan, ra_fig5b)
        assert outcome.result.decided() <= plan.participants


@pytest.mark.parametrize("victim", [0, 1, 2])
def test_exhaustive_crash_point_sweep(alpha_1res, ra_1res, victim):
    """Deterministic failure injection: crash one process after every
    possible step count 0..24 — Theorem 7 must hold at every point."""
    for crash_step in range(25):
        plan = ExecutionPlan(
            participants=FULL,
            faulty=frozenset({victim}),
            crash_after_steps={victim: crash_step},
            seed=1000 + crash_step,
        )
        outcome = run_algorithm1(alpha_1res, plan, ra_1res)
        assert outcome.in_affine_task, (victim, crash_step)
        assert FULL - {victim} <= outcome.result.decided()


def test_two_crashes_in_weak_model():
    """The 2-OF agreement function tolerates one failure at full
    participation (alpha = 2); sweep its crash points too."""
    from repro.adversaries import k_concurrency_alpha
    from repro.core import r_affine

    alpha = k_concurrency_alpha(3, 2)
    task = r_affine(alpha)
    for crash_step in range(0, 20, 2):
        plan = ExecutionPlan(
            participants=FULL,
            faulty=frozenset({2}),
            crash_after_steps={2: crash_step},
            seed=2000 + crash_step,
        )
        outcome = run_algorithm1(alpha, plan, task)
        assert outcome.in_affine_task

"""Experiment E13 (agreement half): set consensus in R*_A."""

import pytest

from repro.protocols.adaptive_set_consensus import (
    AdaptiveSetConsensus,
    fuzz_adaptive_set_consensus,
)
from repro.runtime.affine_executor import scripted_chooser

FULL = frozenset({0, 1, 2})


@pytest.mark.parametrize(
    "alpha_fixture,ra_fixture",
    [
        ("alpha_1of", "ra_1of"),
        ("alpha_2of", "ra_2of"),
        ("alpha_1res", "ra_1res"),
        ("alpha_fig5b", "ra_fig5b"),
    ],
)
def test_fuzzed_runs_satisfy_spec(request, alpha_fixture, ra_fixture):
    alpha = request.getfixturevalue(alpha_fixture)
    task = request.getfixturevalue(ra_fixture)
    outcomes = fuzz_adaptive_set_consensus(alpha, task, runs=60, seed=17)
    bound = alpha(FULL)
    for outcome in outcomes:
        assert outcome.distinct_decisions() <= bound


def test_consensus_in_r1of_star(alpha_1of, ra_1of):
    """alpha(Pi) = 1: true consensus through iterations of R_{1-OF}."""
    protocol = AdaptiveSetConsensus(alpha_1of, ra_1of, seed=5)
    outcome = protocol.run({0: "a", 1: "b", 2: "c"})
    assert outcome.distinct_decisions() == 1
    assert set(outcome.decisions.values()) <= {"a", "b", "c"}


def test_validity_with_duplicate_proposals(alpha_1res, ra_1res):
    protocol = AdaptiveSetConsensus(alpha_1res, ra_1res, seed=6)
    outcome = protocol.run({0: "x", 1: "x", 2: "x"})
    assert set(outcome.decisions.values()) == {"x"}


def test_termination_is_fast(alpha_fig5b, ra_fig5b):
    protocol = AdaptiveSetConsensus(alpha_fig5b, ra_fig5b, seed=7)
    outcome = protocol.run({0: 0, 1: 1, 2: 2})
    assert outcome.iterations <= 5


def test_rejects_partial_proposals(alpha_1of, ra_1of):
    protocol = AdaptiveSetConsensus(alpha_1of, ra_1of)
    with pytest.raises(ValueError):
        protocol.run({0: "a"})


def test_every_process_decides(alpha_2of, ra_2of):
    protocol = AdaptiveSetConsensus(alpha_2of, ra_2of, seed=8)
    outcome = protocol.run({0: "p", 1: "q", 2: "r"})
    assert set(outcome.decisions) == {0, 1, 2}
    assert all(v is not None for v in outcome.decisions.values())


def test_exhaustive_all_runs_1of(alpha_1of, ra_1of):
    """Exhaustive E13: every ordered facet pair of R_{1-OF}* (73² runs)
    reaches consensus — not a sample, the whole space."""
    from repro.protocols.adaptive_set_consensus import (
        exhaustive_adaptive_set_consensus,
    )

    histogram = exhaustive_adaptive_set_consensus(alpha_1of, ra_1of)
    assert histogram == {1: 73 * 73}


@pytest.mark.slow
def test_exhaustive_all_runs_fig5b(alpha_fig5b, ra_fig5b):
    """All 145² two-iteration runs of the fig5b model: the bound 2 is
    respected everywhere and achieved in 480 schedules."""
    from repro.protocols.adaptive_set_consensus import (
        exhaustive_adaptive_set_consensus,
    )

    histogram = exhaustive_adaptive_set_consensus(alpha_fig5b, ra_fig5b)
    assert set(histogram) <= {1, 2}
    assert histogram[2] == 480
    assert sum(histogram.values()) == 145 * 145


def test_adversarial_facet_schedules(alpha_fig5b, ra_fig5b):
    """Scripted worst-ish case: replay each facet of R_A as a constant
    schedule; the bound must hold in every one."""
    bound = alpha_fig5b(FULL)
    for facet in sorted(ra_fig5b.complex.facets, key=repr)[:25]:
        protocol = AdaptiveSetConsensus(
            alpha_fig5b, ra_fig5b, chooser=scripted_chooser([facet])
        )
        outcome = protocol.run({0: "a", 1: "b", 2: "c"})
        assert outcome.distinct_decisions() <= bound

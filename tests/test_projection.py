"""Tests for the chromatic carrier projection Chr K -> K."""

import pytest

from repro.topology.chromatic import ChrVertex, color_of
from repro.topology.projection import (
    carrier_projection_map,
    project_to_base,
    project_vertex,
)
from repro.topology.subdivision import carrier_in_s


def test_project_vertex_depth1():
    v = ChrVertex(1, frozenset({0, 1, 2}))
    assert project_vertex(v) == 1


def test_project_vertex_depth2(chr2):
    for v in list(chr2.vertices)[:30]:
        projected = project_vertex(v)
        assert isinstance(projected, ChrVertex)
        assert projected.color == v.color
        assert projected in v.carrier


def test_project_rejects_base_vertices():
    with pytest.raises(TypeError):
        project_vertex(0)


def test_projection_is_simplicial_and_chromatic(chr1, s3):
    projection = carrier_projection_map(chr1, s3)
    assert projection.is_chromatic()


def test_projection_chr2_to_chr1(chr1, chr2):
    projection = carrier_projection_map(chr2, chr1)
    assert projection.is_chromatic()
    # Images land inside carriers (carried by the carrier map).
    for v in chr2.vertices:
        assert projection(v) in v.carrier


def test_projection_composes_to_base(chr2):
    for v in list(chr2.vertices)[:30]:
        pid = project_to_base(v)
        assert isinstance(pid, int)
        assert pid == color_of(v)


def test_projection_image_within_witnessed(chr2):
    """The projected vertex's own witnessed set is contained in the
    original's (collapsing loses information monotonically)."""
    for v in list(chr2.vertices)[:30]:
        projected = project_vertex(v)
        assert frozenset(projected.carrier) <= carrier_in_s([v])


def test_broken_self_inclusion_detected():
    orphan = ChrVertex(7, frozenset({ChrVertex(0, frozenset({0}))}))
    with pytest.raises(ValueError):
        project_vertex(orphan)

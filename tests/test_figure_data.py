"""Tests for the JSON figure-data export."""

import json

import pytest

from repro.analysis.figure_data import (
    all_figure_data,
    export_json,
    fact_table_data,
    figure1_data,
    figure2_data,
    figure6_data,
    figure7_data,
    landscape_data,
)


@pytest.fixture(scope="module")
def data():
    return all_figure_data()


def test_round_trips_through_json(data):
    payload = json.dumps(data)
    assert json.loads(payload) == json.loads(payload)


def test_figure1_values():
    data = figure1_data()
    assert data["chr_s"]["facets"] == 13
    assert data["chr2_s"]["facets"] == 169
    assert data["r_1_res"]["facets"] == 142
    assert data["fubini"][:4] == [1, 1, 3, 13]


def test_figure2_contains_catalogue():
    rows = figure2_data()["catalogue"]
    names = {row["name"] for row in rows}
    assert "wait-free" in names and "figure-5b" in names
    for row in rows:
        if row["superset_closed"] or row["symmetric"]:
            assert row["fair"]


def test_figure6_levels():
    data = figure6_data()
    assert data["one_obstruction_free"] == {"0": 18, "1": 31}
    assert data["figure5b"] == {"0": 4, "1": 14, "2": 31}


def test_figure7_facets():
    data = figure7_data()
    assert data["R_A(1-OF)"]["facets"] == 73
    assert data["R_A(fig5b)"]["facets"] == 145
    assert data["R_A(1-res)"]["facets"] == data["R_1-res"]["facets"] == 142


def test_fact_table():
    table = fact_table_data()
    assert table["R_A(1-OF)"] == 1
    assert table["wait-free(depth1)"] == 3


def test_landscape_summary():
    data = landscape_data()
    assert data["total"] == 127
    assert data["distinct_affine_tasks"] == 37


def test_export_writes_file(tmp_path):
    target = tmp_path / "figures.json"
    export_json(str(target))
    loaded = json.loads(target.read_text())
    assert loaded["figure1"]["chr_s"]["vertices"] == 12


def test_cli_export(capsys):
    from repro.cli import main

    assert main(["export"]) == 0
    out = capsys.readouterr().out
    parsed = json.loads(out)
    assert parsed["fact_table"]["R_A(fig5b)"] == 2

"""Property tests: the Borowsky–Gafni IS protocol satisfies the IS spec."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.immediate_snapshot import (
    standalone_is_protocol,
    views_from_outputs,
)
from repro.runtime.memory import SharedMemory
from repro.runtime.scheduler import Scheduler
from repro.topology.enumeration import is_valid_is_views


def run_is(n, schedule_seed):
    rng = random.Random(schedule_seed)
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {i: standalone_is_protocol(i, n, memory, i) for i in range(n)}
    )
    while len(scheduler.outputs) < n:
        alive = [i for i in range(n) if i not in scheduler.outputs]
        scheduler.step(rng.choice(alive))
    return scheduler.outputs


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0))
@settings(max_examples=150, deadline=None)
def test_is_outputs_satisfy_spec(n, seed):
    outputs = run_is(n, seed)
    views = views_from_outputs(outputs)
    assert is_valid_is_views(views)


def test_solo_process_sees_itself():
    outputs = run_is(1, 0)
    assert outputs[0] == {0: 0}


def test_sequential_schedule_gives_ordered_views():
    n = 3
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {i: standalone_is_protocol(i, n, memory, i) for i in range(n)}
    )
    # Run each process to completion in order 0, 1, 2.
    for pid in range(n):
        while pid not in scheduler.outputs:
            scheduler.step(pid)
    assert set(scheduler.outputs[0]) == {0}
    assert set(scheduler.outputs[1]) == {0, 1}
    assert set(scheduler.outputs[2]) == {0, 1, 2}


def test_lockstep_schedule_gives_symmetric_views():
    """Perfect round-robin: all processes descend together and return
    the full view."""
    n = 3
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {i: standalone_is_protocol(i, n, memory, i) for i in range(n)}
    )
    while len(scheduler.outputs) < n:
        for pid in range(n):
            scheduler.step(pid)
    for pid in range(n):
        assert set(scheduler.outputs[pid]) == {0, 1, 2}


def test_values_are_returned_not_ids():
    n = 2
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {
            i: standalone_is_protocol(i, n, memory, f"value-{i}")
            for i in range(n)
        }
    )
    while len(scheduler.outputs) < n:
        for pid in range(n):
            scheduler.step(pid)
    assert scheduler.outputs[0][0] == "value-0"
    assert scheduler.outputs[0][1] == "value-1"


def test_view_sizes_match_levels():
    """The BG invariant: a process returning at level k has |view| >= k
    and every returned view size equals some level reached."""
    for seed in range(20):
        outputs = run_is(4, seed)
        sizes = sorted(len(view) for view in outputs.values())
        # Containment implies sizes are achievable levels.
        assert max(sizes) <= 4
        assert min(sizes) >= 1

"""Unit tests for repro.topology.complex (SimplicialComplex)."""

import pytest

from repro.topology.complex import (
    SimplicialComplex,
    closure,
    standard_simplex_complex,
)


@pytest.fixture
def triangle():
    return SimplicialComplex([frozenset({0, 1, 2})])


@pytest.fixture
def two_triangles():
    """Two triangles glued along the edge {1, 2}."""
    return SimplicialComplex([{0, 1, 2}, {1, 2, 3}])


def test_facets_absorb_subsumed_inputs():
    K = SimplicialComplex([{0, 1}, {0, 1, 2}])
    assert K.facets == frozenset({frozenset({0, 1, 2})})


def test_simplices_of_triangle(triangle):
    assert len(triangle.simplices) == 7  # 3 + 3 + 1


def test_vertices(two_triangles):
    assert two_triangles.vertices == frozenset({0, 1, 2, 3})


def test_dimension(two_triangles):
    assert two_triangles.dimension == 2
    assert SimplicialComplex([]).dimension == -1


def test_contains_faces(triangle):
    assert {0, 1} in triangle
    assert {0, 3} not in triangle
    assert frozenset() not in triangle


def test_equality_and_hash():
    a = SimplicialComplex([{0, 1}])
    b = SimplicialComplex([{0, 1}, {1}])
    assert a == b
    assert hash(a) == hash(b)


def test_is_pure(two_triangles):
    assert two_triangles.is_pure()
    assert two_triangles.is_pure(2)
    assert not two_triangles.is_pure(1)
    mixed = SimplicialComplex([{0, 1, 2}, {3, 4}])
    assert not mixed.is_pure()


def test_empty_complex_is_pure():
    assert SimplicialComplex([]).is_pure()


def test_is_facet(two_triangles):
    assert two_triangles.is_facet({0, 1, 2})
    assert not two_triangles.is_facet({1, 2})


def test_simplices_of_dim(two_triangles):
    assert len(two_triangles.simplices_of_dim(0)) == 4
    assert len(two_triangles.simplices_of_dim(1)) == 5
    assert len(two_triangles.simplices_of_dim(2)) == 2


def test_f_vector(two_triangles):
    assert two_triangles.f_vector() == [4, 5, 2]


def test_star_contains_cofaces(two_triangles):
    star = two_triangles.star([{1, 2}])
    assert frozenset({0, 1, 2}) in star
    assert frozenset({1, 2, 3}) in star
    assert frozenset({1, 2}) in star
    assert frozenset({0}) not in star


def test_link_of_shared_edge(two_triangles):
    link = two_triangles.link({1, 2})
    assert link.vertices == frozenset({0, 3})
    assert link.dimension == 0


def test_link_of_vertex(two_triangles):
    link = two_triangles.link({1})
    # Vertices 0, 2, 3 with edges {0,2} and {2,3}.
    assert frozenset({0, 2}) in link
    assert frozenset({2, 3}) in link
    assert frozenset({0, 3}) not in link


def test_skeleton(two_triangles):
    skel = two_triangles.skeleton(1)
    assert skel.dimension == 1
    assert len(skel.simplices_of_dim(1)) == 5
    assert two_triangles.skeleton(-1).is_empty()


def test_pure_complement_removes_touching_facets(two_triangles):
    pc = two_triangles.pure_complement([{0}])
    assert pc.facets == frozenset({frozenset({1, 2, 3})})


def test_pure_complement_keeps_dimension():
    K = SimplicialComplex([{0, 1, 2}, {3, 4}])
    pc = K.pure_complement([{9}])
    # Only top-dimensional facets are kept.
    assert pc.facets == frozenset({frozenset({0, 1, 2})})


def test_pure_complement_empty_when_all_touched(triangle):
    assert triangle.pure_complement([{0}, {1}, {2}]).is_empty()


def test_restrict(two_triangles):
    sub = two_triangles.restrict({0, 1, 2})
    assert sub.facets == frozenset({frozenset({0, 1, 2})})


def test_sub_complex_predicate(two_triangles):
    sub = two_triangles.sub_complex(lambda sigma: 3 not in sigma)
    assert frozenset({1, 2, 3}) not in sub.simplices
    assert frozenset({0, 1, 2}) in sub.simplices


def test_union_intersection(triangle):
    other = SimplicialComplex([{2, 3}])
    union = triangle.union(other)
    assert {2, 3} in union and {0, 1, 2} in union
    inter = union.intersection(triangle)
    assert inter == triangle


def test_is_sub_complex_of(two_triangles, triangle):
    assert triangle.is_sub_complex_of(two_triangles)
    assert not two_triangles.is_sub_complex_of(triangle)


def test_closure_helper():
    K = closure([{1, 2, 3}])
    assert {1, 3} in K


def test_standard_simplex_complex():
    K = standard_simplex_complex(4)
    assert K.dimension == 3
    assert len(K.simplices) == 2**4 - 1
    with pytest.raises(ValueError):
        standard_simplex_complex(0)

"""Tests for repro.analysis: stats, compactness, Sperner, reporting."""

import random

import pytest

from repro.analysis.compactness import (
    affine_model_is_prefix_closed,
    bounded_round_solvability,
    obstruction_free_witness,
    solo_run_prefixes_comply_one_resilient,
)
from repro.analysis.reporting import (
    banner,
    render_check,
    render_mapping,
    render_table,
)
from repro.analysis.sperner import (
    admissible_labelings_domain,
    fuzz_sperner,
    is_admissible,
    panchromatic_facets,
    random_admissible_labeling,
    sperner_parity_holds,
)
from repro.analysis.stats import (
    compare_affine_tasks,
    complex_census,
    facet_share,
    facets_by_color_census,
    inclusion_matrix,
    vertices_by_witnessed_size,
)
from repro.tasks.set_consensus import set_consensus_task


# ----------------------------------------------------------------- stats
def test_complex_census(chr1):
    census = complex_census(chr1)
    assert census["vertices"] == 12
    assert census["facets"] == 13
    assert census["pure"]


def test_facet_share(rkof_1, chr2):
    assert facet_share(rkof_1, chr2) == pytest.approx(73 / 169)


def test_vertices_by_witnessed_size(rtres_1):
    census = vertices_by_witnessed_size(rtres_1.complex)
    assert 1 not in census  # corners excluded in R_{1-res}
    assert set(census) == {2, 3}


def test_facets_by_color_census(rkof_1):
    assert facets_by_color_census(rkof_1.complex) == {3: 73}


def test_compare_affine_tasks(ra_1of, ra_1res):
    rows = compare_affine_tasks([ra_1of, ra_1res])
    assert rows[0]["facets"] == 73
    assert rows[1]["facets"] == 142


def test_inclusion_matrix(ra_1of, ra_2of):
    matrix = inclusion_matrix([ra_1of, ra_2of])
    assert matrix[0][1] is True  # R_A(1-OF) ⊆ R_A(2-OF)
    assert matrix[1][0] is False


# ------------------------------------------------------------ compactness
def test_one_resilient_not_compact():
    report = solo_run_prefixes_comply_one_resilient()
    assert report["every_prefix_complies"]
    assert not report["limit_run_in_model"]
    assert not report["compact"]


def test_one_obstruction_free_not_compact():
    report = obstruction_free_witness()
    assert not report["compact"]


def test_affine_models_prefix_closed(ra_1of, ra_1res):
    assert affine_model_is_prefix_closed(ra_1of)
    assert affine_model_is_prefix_closed(ra_1res)


def test_bounded_round_solvability_positive(ra_1res):
    depth = bounded_round_solvability(ra_1res, set_consensus_task(3, 2))
    assert depth == 1


def test_bounded_round_solvability_negative(ra_1res):
    assert (
        bounded_round_solvability(
            ra_1res, set_consensus_task(3, 1), max_depth=1
        )
        is None
    )


# ---------------------------------------------------------------- sperner
def test_admissible_domain_is_witness_sets(chr1):
    domain = admissible_labelings_domain(chr1)
    for vertex, options in domain.items():
        assert options
        assert vertex.color in options or options


def test_random_labelings_admissible(chr1):
    rng = random.Random(0)
    for _ in range(10):
        labeling = random_admissible_labeling(chr1, rng)
        assert is_admissible(chr1, labeling)


def test_sperner_parity_chr1(chr1):
    assert fuzz_sperner(chr1, trials=100, seed=1)


def test_sperner_parity_chr2(chr2):
    assert fuzz_sperner(chr2, trials=50, seed=2)


def test_panchromatic_counter(chr1):
    # The identity-like labeling (label = own color) is admissible and
    # panchromatic on every facet: 13 facets, odd.
    labeling = {v: v.color for v in chr1.vertices}
    assert is_admissible(chr1, labeling)
    assert panchromatic_facets(chr1, labeling) == 13
    assert sperner_parity_holds(chr1, labeling)


# -------------------------------------------------------------- reporting
def test_render_table_aligns():
    table = render_table(["a", "bb"], [[1, 2], [33, 4]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_render_mapping():
    text = render_mapping("title", {"k": 1})
    assert "title" in text and "k: 1" in text


def test_render_check():
    assert render_check("x", True).startswith("[PASS]")
    assert render_check("x", False).startswith("[FAIL]")


def test_banner():
    assert "hello" in banner("hello")

"""Unit tests for agreement functions (Section 3)."""

import pytest

from repro.adversaries.adversary import t_resilient, wait_free
from repro.adversaries.agreement import (
    AgreementFunction,
    agreement_function_of,
    from_callable,
    k_concurrency_alpha,
    t_resilience_alpha,
    wait_free_alpha,
)


def test_alpha_of_empty_set_is_zero(alpha_wf):
    assert alpha_wf(frozenset()) == 0


def test_wait_free_alpha_values():
    alpha = wait_free_alpha(3)
    assert alpha({0}) == 1
    assert alpha({0, 1}) == 2
    assert alpha({0, 1, 2}) == 3


def test_k_concurrency_alpha_values():
    alpha = k_concurrency_alpha(3, 2)
    assert alpha({0}) == 1
    assert alpha({0, 1}) == 2
    assert alpha({0, 1, 2}) == 2


def test_t_resilience_alpha_values():
    alpha = t_resilience_alpha(3, 1)
    assert alpha({0}) == 0
    assert alpha({0, 1}) == 1
    assert alpha({0, 1, 2}) == 2


def test_agreement_function_of_adversary_matches_formula():
    adversary = t_resilient(3, 1)
    alpha = agreement_function_of(adversary)
    expected = t_resilience_alpha(3, 1)
    assert alpha.table() == expected.table()


def test_agreement_function_of_wait_free():
    assert (
        agreement_function_of(wait_free(3)).table()
        == wait_free_alpha(3).table()
    )


def test_missing_entry_rejected():
    with pytest.raises(ValueError):
        AgreementFunction(2, {frozenset({0}): 1})


def test_monotonicity_enforced():
    table = {
        frozenset({0}): 1,
        frozenset({1}): 1,
        frozenset({0, 1}): 0,  # decreasing
    }
    with pytest.raises(ValueError):
        AgreementFunction(2, table)


def test_bounded_growth_enforced():
    table = {
        frozenset({0}): 0,
        frozenset({1}): 0,
        frozenset({0, 1}): 2,  # grows by 2 from a singleton
    }
    with pytest.raises(ValueError):
        AgreementFunction(2, table)


def test_range_enforced():
    table = {
        frozenset({0}): 2,  # above |P|
        frozenset({1}): 1,
        frozenset({0, 1}): 2,
    }
    with pytest.raises(ValueError):
        AgreementFunction(2, table)


def test_violation_reports_reason():
    table = {
        frozenset({0}): 1,
        frozenset({1}): 1,
        frozenset({0, 1}): 0,
    }
    alpha = AgreementFunction(2, table, validate=False)
    assert "monotonicity" in alpha.violation()


def test_is_regular(alpha_1res, alpha_2of, alpha_wf):
    assert alpha_1res.is_regular()
    assert alpha_2of.is_regular()
    assert alpha_wf.is_regular()


def test_positive_participations(alpha_1res):
    positive = alpha_1res.positive_participations()
    assert frozenset({0}) not in positive
    assert frozenset({0, 1}) in positive
    assert frozenset({0, 1, 2}) in positive


def test_from_callable_name():
    alpha = from_callable(3, len, name="identity")
    assert alpha.name == "identity"
    assert repr(alpha) == "AgreementFunction(n=3, name='identity')"


def test_equality_and_hash():
    a = k_concurrency_alpha(3, 2)
    b = k_concurrency_alpha(3, 2)
    assert a == b
    assert hash(a) == hash(b)
    assert a != t_resilience_alpha(3, 1)

"""The query service: protocol, equivalence, coalescing, drain.

The load-bearing guarantees:

* every job kind's response value is **byte-identical** to the engine's
  canonical serialization of a direct call;
* N concurrent clients issuing the same query cost exactly **one**
  engine computation;
* SIGTERM / ``drain()`` lets in-flight requests finish before exit.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.adversaries import figure5b_adversary
from repro.core.ra import DEFAULT_VARIANT
from repro.engine import Engine, JobSpec, serialize
from repro.runtime.algorithm1 import fuzz_case_seed
from repro.service import (
    AsyncServiceClient,
    BackgroundServer,
    MemCache,
    ProtocolError,
    ServiceClient,
    ServiceError,
    parse_request,
)
from repro.solver import SolveRequest
from repro.tasks.set_consensus import set_consensus_task

REPO_ROOT = Path(__file__).resolve().parent.parent


def _raw_request(port: int, line: bytes) -> dict:
    """One raw line on a fresh connection; returns the parsed response."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        handle = sock.makefile("rwb")
        handle.write(line)
        handle.flush()
        return json.loads(handle.readline())


# ----------------------------------------------------------------------
# Protocol unit tests (no server)
# ----------------------------------------------------------------------
def test_parse_request_rejects_malformed_lines():
    with pytest.raises(ProtocolError) as info:
        parse_request("{not json")
    assert info.value.code == "bad_request"
    with pytest.raises(ProtocolError) as info:
        parse_request('{"v": 2, "op": "ping"}')
    assert info.value.code == "unsupported_version"
    with pytest.raises(ProtocolError) as info:
        parse_request('{"v": 1, "op": "dance"}')
    assert info.value.code == "unknown_op"
    with pytest.raises(ProtocolError) as info:
        parse_request('{"v": 1, "op": "query", "kind": "chr"}')
    assert info.value.code == "bad_request"  # missing payload
    with pytest.raises(ProtocolError) as info:
        parse_request(
            '{"v": 1, "op": "query", "kind": "chr", "payload": "x", "timeout": -1}'
        )
    assert info.value.code == "bad_request"


def test_parse_request_round_trip():
    request = parse_request(
        '{"v": 1, "id": 9, "op": "query", "kind": "chr", "payload": "p", "timeout": 2}'
    )
    assert request.id == 9
    assert request.kind == "chr"
    assert request.timeout == 2.0


# ----------------------------------------------------------------------
# A shared server for read-mostly tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    engine = Engine(cache=MemCache())
    with BackgroundServer(engine, window=0.002) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as active:
        yield active


def test_ping_and_stats_round_trip(client):
    assert client.ping()
    stats = client.stats()
    assert stats["server"]["connections"] >= 1
    assert stats["engine"]["jobs"] == 1
    assert stats["memcache"]["max_entries"] == 256
    assert "requests_total" in stats["metrics"]["counters"]
    assert "repro_service_uptime_seconds" in client.metrics_text()


# ----------------------------------------------------------------------
# Byte-identical equivalence for every job kind (the acceptance test)
# ----------------------------------------------------------------------
def test_every_kind_is_byte_identical_to_direct_engine_calls(
    client, alpha_1of, ra_1of, alpha_1res, ra_1res
):
    task23 = set_consensus_task(3, 2)
    payloads = {
        "chr": (3, 1),
        "classify": (figure5b_adversary(),),
        "r_affine": (alpha_1of, DEFAULT_VARIANT),
        # Typed request payload: exercises the ``solvereq`` codec over
        # the wire end-to-end (legacy tuple payloads are covered by the
        # client helpers and the deprecation-shim tests).
        "solve": (SolveRequest(affine=ra_1res, task=task23),),
        "fuzz": (alpha_1res, ra_1res, fuzz_case_seed(0, 0)),
    }
    for kind, payload in payloads.items():
        direct_value = JobSpec(kind, payload).run()
        response = client.query_response(kind, payload)
        assert response["ok"], (kind, response)
        assert response["kind"] == kind
        assert response["value"] == serialize(direct_value), kind
        assert client._decode_value(response) == direct_value


def test_repeated_query_hits_the_memcache(client):
    first = client.query_response("chr", (2, 1))
    again = client.query_response("chr", (2, 1))
    assert again["value"] == first["value"]
    assert again["cache_hit"]


def test_simulate_and_oracle_helpers(client):
    from repro.sim import oracle_params, simulate_params

    report = client.simulate(
        "bosco-weak-agreement", n=4, t=1, schedules=2
    )
    assert report == simulate_params(
        "bosco-weak-agreement", None, 4, 1, 1, 2, 7
    )
    assert report["pass"]

    verdict = client.oracle("reliable-broadcast", n=3, t=1, schedules=2)
    assert verdict == oracle_params(
        "reliable-broadcast", None, 3, 1, 1, 2, 7
    )
    assert verdict["agree"] and not verdict["reference"]["solvable"]


# ----------------------------------------------------------------------
# Coalescing
# ----------------------------------------------------------------------
def test_concurrent_identical_sleeps_coalesce_to_one_execution():
    engine = Engine(cache=MemCache())
    with BackgroundServer(engine, window=0.02) as background:

        async def fire():
            clients = [
                await AsyncServiceClient(port=background.port).connect()
                for _ in range(6)
            ]
            try:
                return await asyncio.gather(
                    *[
                        active.query_response("sleep", (0.5, "shared"))
                        for active in clients
                    ]
                )
            finally:
                for active in clients:
                    await active.close()

        responses = asyncio.run(fire())
        assert all(response["ok"] for response in responses)
        assert sorted(r["coalesced"] for r in responses) == [False] + [True] * 5
        metrics = background.server.metrics
        assert metrics.counter("jobs_dispatched_total") == 1
        assert metrics.counter("coalesced_total") == 5


def test_concurrent_identical_solves_compute_once(ra_1res):
    """N clients, one solve query: exactly one engine computation."""
    task23 = set_consensus_task(3, 2)
    engine = Engine(cache=MemCache())
    with BackgroundServer(engine, window=0.05) as background:

        async def fire():
            clients = [
                await AsyncServiceClient(port=background.port).connect()
                for _ in range(5)
            ]
            try:
                return await asyncio.gather(
                    *[active.solve(ra_1res, task23) for active in clients]
                )
            finally:
                for active in clients:
                    await active.close()

        answers = asyncio.run(fire())
        expected = Engine().solve_many([(ra_1res, task23, None)])[0]
        assert all(answer == expected for answer in answers)
        # One full cache miss == one computation; every other request
        # was coalesced onto it or answered from the memcache.
        assert engine.stats()["misses"] == 1


# ----------------------------------------------------------------------
# Deadlines, errors, limits
# ----------------------------------------------------------------------
def test_per_request_timeout_returns_typed_error(client):
    with pytest.raises(ServiceError) as info:
        client.query("sleep", (3.0, "late"), timeout=0.2)
    assert info.value.code == "timeout"
    # The connection stays usable after a timed-out request.
    assert client.ping()


def test_wire_error_codes(server, client):
    assert _raw_request(server.port, b"{broken\n")["error"]["code"] == "bad_request"
    assert (
        _raw_request(server.port, b'{"v": 99, "op": "ping"}\n')["error"]["code"]
        == "unsupported_version"
    )
    with pytest.raises(ServiceError) as info:
        client.query("no_such_kind", (1,))
    assert info.value.code == "unknown_kind"
    with pytest.raises(ServiceError) as info:
        client.request("query", kind="chr", payload="]not canonical[")
    assert info.value.code == "bad_payload"
    with pytest.raises(ServiceError) as info:
        client.request("query", kind="chr", payload=serialize([3, 1]))
    assert info.value.code == "bad_payload"  # decodes, but not a tuple
    with pytest.raises(ServiceError) as info:
        client.query("chr", (3, "not-a-depth"))
    assert info.value.code == "job_error"


def test_budget_exceeded_maps_back_to_the_engine_exception(ra_1res):
    from repro.tasks.solvability import SearchBudgetExceeded

    engine = Engine(cache=MemCache(), split_retries=0)
    with BackgroundServer(engine) as background:
        with ServiceClient(port=background.port) as active:
            with pytest.raises(SearchBudgetExceeded) as info:
                active.solve(ra_1res, set_consensus_task(3, 2), budget=5)
            assert info.value.nodes_explored > 0


def test_connection_limit_returns_overloaded():
    engine = Engine(cache=MemCache())
    with BackgroundServer(engine, max_connections=1) as background:
        with ServiceClient(port=background.port) as first:
            assert first.ping()
            response = _raw_request(
                background.port, b'{"v": 1, "op": "ping"}\n'
            )
            assert response["error"]["code"] == "overloaded"


# ----------------------------------------------------------------------
# HTTP shim
# ----------------------------------------------------------------------
def test_http_shim_metrics_stats_health_and_query(server, client):
    import urllib.request

    client.ping()  # ensure at least one counter exists
    base = f"http://127.0.0.1:{server.port}"
    metrics = urllib.request.urlopen(f"{base}/metrics", timeout=30).read()
    assert b"repro_service_requests_total" in metrics
    stats = json.loads(urllib.request.urlopen(f"{base}/stats", timeout=30).read())
    assert stats["server"]["port"] == server.port
    health = json.loads(
        urllib.request.urlopen(f"{base}/healthz", timeout=30).read()
    )
    assert health["status"] == "ok"
    assert health["protocol_version"] == 1
    assert health["memcache_capacity"] == 256
    body = json.dumps(
        {"v": 1, "id": 1, "op": "query", "kind": "chr", "payload": serialize((2, 1))}
    ).encode()
    reply = json.loads(
        urllib.request.urlopen(
            urllib.request.Request(f"{base}/query", data=body, method="POST"),
            timeout=30,
        ).read()
    )
    assert reply["ok"] and reply["value"] == serialize(JobSpec("chr", (2, 1)).run())
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(f"{base}/nope", timeout=30)


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
def test_drain_completes_inflight_requests_then_refuses_connections():
    engine = Engine(cache=MemCache())
    background = BackgroundServer(engine, drain_grace=10.0).start()
    port = background.port
    outcome = {}

    def slow_query():
        with ServiceClient(port=port) as active:
            outcome["response"] = active.query_response("sleep", (1.0, "drained"))

    worker = threading.Thread(target=slow_query)
    worker.start()
    time.sleep(0.3)  # request is in flight
    background.stop()  # graceful drain
    worker.join(timeout=30)
    assert outcome["response"]["ok"]
    assert json.loads(outcome["response"]["value"]) == "drained"
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", port), timeout=5)


def test_sigterm_drains_the_serve_subprocess():
    """``python -m repro serve`` + SIGTERM: in-flight work finishes, exit 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--no-cache"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        announce = process.stdout.readline()
        port = int(re.search(r":(\d+) ", announce).group(1))
        outcome = {}

        def slow_query():
            with ServiceClient(port=port) as active:
                outcome["value"] = active.query("sleep", (1.0, "survived"))

        worker = threading.Thread(target=slow_query)
        worker.start()
        time.sleep(0.4)
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=60)
        worker.join(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
    assert process.returncode == 0
    assert outcome["value"] == "survived"
    assert "drained cleanly" in output

"""Unit and property tests for setcon / csize (Definition 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.adversary import (
    Adversary,
    from_live_sets,
    k_obstruction_free,
    t_resilient,
    wait_free,
)
from repro.adversaries.setcon import (
    csize,
    hitting_set_census,
    hitting_sets,
    minimal_hitting_set,
    setcon,
    setcon_restricted,
    setcon_superset_closed,
    setcon_symmetric,
)


def test_setcon_empty_adversary():
    assert setcon(Adversary(3, [])) == 0


def test_setcon_wait_free_is_n():
    for n in (2, 3, 4):
        assert setcon(wait_free(n)) == n


def test_setcon_t_resilient():
    # setcon(A_{t-res}) = t + 1.
    assert setcon(t_resilient(3, 1)) == 2
    assert setcon(t_resilient(4, 1)) == 2
    assert setcon(t_resilient(4, 2)) == 3
    assert setcon(t_resilient(3, 0)) == 1


def test_setcon_k_obstruction_free():
    for n, k in [(3, 1), (3, 2), (4, 2), (4, 3)]:
        assert setcon(k_obstruction_free(n, k)) == k


def test_setcon_single_live_set():
    assert setcon(from_live_sets(3, [{0, 1, 2}])) == 1
    assert setcon(from_live_sets(3, [{2}])) == 1


def test_setcon_restricted():
    a = t_resilient(3, 1)
    assert setcon_restricted(a, {0, 1}) == 1
    assert setcon_restricted(a, {0}) == 0
    assert setcon_restricted(a, {0, 1, 2}) == 2


def test_csize_examples():
    assert csize(t_resilient(3, 1)) == 2
    assert csize(wait_free(3)) == 3
    assert csize(Adversary(3, [])) == 0
    assert csize(from_live_sets(3, [{0, 1, 2}])) == 1


def test_hitting_sets():
    a = from_live_sets(3, [{1}, {0, 2}])
    hits = set(hitting_sets(a, 2))
    assert frozenset({1, 0}) in hits
    assert frozenset({1, 2}) in hits
    assert frozenset({0, 2}) not in hits


def test_minimal_hitting_set():
    a = from_live_sets(3, [{1}, {0, 2}])
    hit = minimal_hitting_set(a)
    assert len(hit) == 2 and 1 in hit


def test_hitting_set_census():
    size, sets = hitting_set_census(from_live_sets(3, [{1}, {0, 2}]))
    assert size == 2
    assert len(sets) == 2


def test_superset_closed_shortcut_agrees():
    for adversary in (t_resilient(3, 1), wait_free(3), t_resilient(4, 2)):
        assert setcon_superset_closed(adversary) == setcon(adversary)


def test_superset_closed_shortcut_rejects_others():
    with pytest.raises(ValueError):
        setcon_superset_closed(k_obstruction_free(3, 1))


def test_symmetric_shortcut_agrees():
    for adversary in (
        t_resilient(3, 1),
        k_obstruction_free(3, 2),
        k_obstruction_free(4, 3),
        wait_free(4),
    ):
        assert setcon_symmetric(adversary) == setcon(adversary)


def test_symmetric_shortcut_rejects_others():
    with pytest.raises(ValueError):
        setcon_symmetric(from_live_sets(3, [{0}]))


@st.composite
def random_adversaries(draw, n=3):
    from itertools import combinations

    subsets = [
        frozenset(c)
        for size in range(1, n + 1)
        for c in combinations(range(n), size)
    ]
    live = draw(
        st.lists(st.sampled_from(subsets), min_size=1, max_size=5)
    )
    return Adversary(n, live)


@given(random_adversaries())
@settings(max_examples=60, deadline=None)
def test_setcon_bounded_by_max_live_size(adversary):
    assert 0 <= setcon(adversary) <= max(
        (len(live) for live in adversary), default=0
    )


@given(random_adversaries())
@settings(max_examples=60, deadline=None)
def test_setcon_monotone_under_restriction(adversary):
    full = setcon(adversary)
    for participants in [{0, 1}, {0, 2}, {1, 2}]:
        assert setcon_restricted(adversary, participants) <= full


@given(random_adversaries())
@settings(max_examples=40, deadline=None)
def test_csize_equals_setcon_when_superset_closed(adversary):
    closed = adversary.superset_closure()
    assert csize(closed) == setcon(closed)

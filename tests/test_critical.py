"""Unit tests for critical simplices (Definition 7, Figure 5)."""


from repro.core.critical import (
    CriticalStructure,
    critical_members,
    critical_simplices,
    critical_view,
    is_critical,
)
from repro.topology.chromatic import ChrVertex, chi


def solo_vertex(pid):
    return ChrVertex(pid, frozenset({pid}))


def test_empty_is_not_critical(alpha_wf):
    assert not is_critical([], alpha_wf)


def test_solo_vertex_critical_wait_free(alpha_wf):
    assert is_critical([solo_vertex(0)], alpha_wf)


def test_solo_vertex_not_critical_one_resilient(alpha_1res):
    # alpha({0}) = 0 = alpha({}) — no power is witnessed.
    assert not is_critical([solo_vertex(0)], alpha_1res)


def test_mixed_carriers_never_critical(alpha_wf):
    sigma = [
        ChrVertex(0, frozenset({0})),
        ChrVertex(1, frozenset({0, 1})),
    ]
    assert not is_critical(sigma, alpha_wf)


def test_shared_carrier_pair_critical_1res(alpha_1res):
    sigma = [
        ChrVertex(0, frozenset({0, 1})),
        ChrVertex(1, frozenset({0, 1})),
    ]
    # alpha({0,1}) = 1 > alpha({}) = 0.
    assert is_critical(sigma, alpha_1res)


def test_single_member_of_pair_view_critical_1res(alpha_1res):
    sigma = [ChrVertex(0, frozenset({0, 1}))]
    # alpha({1}) = 0 < alpha({0,1}) = 1.
    assert is_critical(sigma, alpha_1res)


def test_1of_criticality_only_at_small_views(alpha_1of):
    # For alpha = min(|P|, 1): critical iff the members are the whole view.
    assert is_critical([solo_vertex(2)], alpha_1of)
    pair = [
        ChrVertex(0, frozenset({0, 1})),
        ChrVertex(1, frozenset({0, 1})),
    ]
    assert is_critical(pair, alpha_1of)
    half = [ChrVertex(0, frozenset({0, 1}))]
    assert not is_critical(half, alpha_1of)


def test_figure5a_critical_count(chr1, alpha_1of):
    """Figure 5a: the 1-obstruction-free model has 7 critical simplices
    in Chr s: the three corner vertices, the three edge-midpoint pairs
    sharing a 2-view... counted mechanically."""
    crit = [
        sigma for sigma in chr1.simplices if is_critical(sigma, alpha_1of)
    ]
    assert len(crit) == 7


def test_figure5b_critical_count(chr1, alpha_fig5b):
    crit = [
        sigma
        for sigma in chr1.simplices
        if is_critical(sigma, alpha_fig5b)
    ]
    assert len(crit) == 15


def test_critical_simplices_of_facets(chr1, alpha_1of):
    structure = CriticalStructure(alpha_1of)
    for facet in chr1.facets:
        direct = critical_simplices(facet, alpha_1of)
        assert structure.cs(facet) == direct
        for theta in direct:
            assert is_critical(theta, alpha_1of)
            assert theta <= facet


def test_critical_members_union(chr1, alpha_fig5b):
    for facet in chr1.facets:
        members = critical_members(facet, alpha_fig5b)
        expected = set()
        for theta in critical_simplices(facet, alpha_fig5b):
            expected |= theta
        assert members == frozenset(expected)


def test_critical_view_is_union_of_carriers(chr1, alpha_fig5b):
    for facet in chr1.facets:
        view = critical_view(facet, alpha_fig5b)
        members = critical_members(facet, alpha_fig5b)
        expected = frozenset().union(
            *(v.carrier for v in members)
        ) if members else frozenset()
        assert view == expected


def test_structure_caches(alpha_1of, chr1):
    structure = CriticalStructure(alpha_1of)
    facet = next(iter(chr1.facets))
    first = structure.cs(facet)
    assert structure.cs(facet) is first  # cached object identity


def test_csm_colors(chr1, alpha_1of):
    structure = CriticalStructure(alpha_1of)
    for facet in chr1.facets:
        assert structure.csm_colors(facet) == chi(structure.csm(facet))


def test_wait_free_everything_with_shared_carrier_critical(chr1, alpha_wf):
    for sigma in chr1.simplices:
        carriers = {v.carrier for v in sigma}
        if len(carriers) == 1:
            assert is_critical(sigma, alpha_wf)

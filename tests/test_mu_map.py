"""Experiment E10: µ_Q and Properties 9/10/12 (Section 6.2)."""

import pytest

from repro.protocols.mu_map import (
    MuMap,
    all_process_subsets,
    check_agreement,
    check_robustness,
    check_validity,
    verify_mu_properties,
)
from repro.topology.subdivision import carrier_in_s

FULL = frozenset({0, 1, 2})


@pytest.mark.parametrize(
    "alpha_fixture,ra_fixture",
    [
        ("alpha_1of", "ra_1of"),
        ("alpha_2of", "ra_2of"),
        ("alpha_1res", "ra_1res"),
        ("alpha_fig5b", "ra_fig5b"),
    ],
)
def test_mu_properties_exhaustive(request, alpha_fixture, ra_fixture):
    alpha = request.getfixturevalue(alpha_fixture)
    task = request.getfixturevalue(ra_fixture)
    report = verify_mu_properties(alpha, task)
    assert report == {
        "validity": True,
        "agreement": True,
        "robustness": True,
    }


def test_mu_leader_is_self_when_alone(alpha_1of, ra_1of):
    mu = MuMap(alpha_1of)
    for vertex in ra_1of.complex.vertices:
        q = frozenset({vertex.color})
        assert mu(vertex, q) == vertex.color


def test_mu_undefined_for_unseen_q(alpha_1of, ra_1of):
    mu = MuMap(alpha_1of)
    # Pick a vertex that witnessed only itself; Q = others.
    solo = next(
        v
        for v in ra_1of.complex.vertices
        if carrier_in_s([v]) == frozenset({v.color})
    )
    others = FULL - {solo.color}
    with pytest.raises(ValueError):
        mu(solo, others)


def test_delta_prefers_critical_views(alpha_1res, ra_1res):
    mu = MuMap(alpha_1res)
    for vertex in list(ra_1res.complex.vertices)[:30]:
        csv = mu.structure.csv(vertex.carrier)
        if csv & FULL:
            view = mu.delta_q(vertex, FULL)
            assert view is not None
            critical_views = mu.critical_views(vertex)
            assert view in critical_views


def test_gamma_returns_smallest_view(alpha_1of, ra_1of):
    mu = MuMap(alpha_1of)
    for vertex in list(ra_1of.complex.vertices)[:30]:
        view = mu.gamma_q(vertex, FULL)
        observed = mu.observed_views(vertex)
        assert view == observed[0]


def test_consensus_through_mu_on_r1of(alpha_1of, ra_1of):
    """With alpha(Pi) = 1, µ elects a single leader per facet: the map
    v -> µ(v) is constant on facets — consensus at one shot."""
    mu = MuMap(alpha_1of)
    for facet in ra_1of.complex.facets:
        leaders = {mu(v, FULL) for v in facet}
        assert len(leaders) == 1


def test_agreement_bound_tight_somewhere(alpha_fig5b, ra_fig5b):
    """The bound of Property 10 is achieved: some facet elects
    alpha(Pi) = 2 distinct leaders."""
    mu = MuMap(alpha_fig5b)
    counts = {
        len({mu(v, FULL) for v in facet})
        for facet in ra_fig5b.complex.facets
    }
    assert max(counts) == 2


def test_all_process_subsets():
    subsets = all_process_subsets(3)
    assert len(subsets) == 7
    assert frozenset({0, 1, 2}) in subsets


def test_individual_checkers_agree_with_report(alpha_1of, ra_1of):
    mu = MuMap(alpha_1of)
    for q in all_process_subsets(3):
        assert check_validity(mu, ra_1of, q)
        assert check_agreement(mu, ra_1of, q)
        assert check_robustness(mu, ra_1of, q)

"""Tests for ``repro.solver.symmetry`` — the orbit-quotiented kernel.

The load-bearing guarantees:

* every automorphism the kernel prunes by is **verified** against the
  interned constraint problem, so the quotient is sound by
  construction: verdicts and returned maps must match the ``bitset``
  kernel on every instance, symmetric or not — fuzzed over randomly
  thinned tasks (node counts are deliberately *not* compared: the
  symmetry kernel explores its own orbit-blocked tree);
* found maps are concrete (de-quotienting is the identity), so they
  pass the independent map verifier and back certificates the
  unchanged stdlib checker accepts;
* on a symmetric instance the quotient actually prunes (strictly
  fewer nodes than bitset on the wait-free instance);
* a trivial automorphism group degenerates to the exact bitset tree;
* resume is refused, and resume-carrying requests silently coerce to
  a tree-identical kernel (same contract as ``fc``).
"""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.certify import cert_to_bytes, certificate_for
from repro.certify.checker import check
from repro.certify.witness import solvable_cert
from repro.core import full_affine_task
from repro.solver import (
    KERNEL_SYMMETRY,
    BitsetKernel,
    SolveRequest,
    SolveResult,
    SymmetryKernel,
    make_searcher,
    run_request,
)
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import (
    MapSearch,
    SearchBudgetExceeded,
    verify_carried_map,
)
from repro.tasks.task import Task


@pytest.fixture(scope="session")
def wf_affine():
    """The wait-free one-round task ``Chr s`` (3 processes)."""
    return full_affine_task(3, 1)


def _thinned_task(base: Task, seed: int) -> Task:
    """A random sub-task: ``Delta`` with some output simplices dropped."""
    rng = random.Random(seed)
    table = {}
    for size in range(1, base.n + 1):
        for combo in combinations(range(base.n), size):
            participants = frozenset(combo)
            outputs = sorted(
                base.allowed_outputs(participants),
                key=lambda sigma: sorted(
                    (v.process, repr(v.value)) for v in sigma
                ),
            )
            kept = [sigma for sigma in outputs if rng.random() < 0.8]
            table[participants] = frozenset(kept or outputs)
    return Task(
        base.n,
        base.input_complex,
        base.output_complex,
        lambda participants: table[frozenset(participants)],
        name=f"{base.name}-thinned-{seed}",
    )


# ------------------------------------------------------------- the group
def test_wait_free_group_is_nontrivial_and_verified(wf_affine):
    kernel = SymmetryKernel(wf_affine, set_consensus_task(3, 2))
    # Fully symmetric task + fully symmetric adversary: every non-trivial
    # process permutation survives verification (|S_3| - 1 = 5).
    assert len(kernel.group) == 5
    total = len(kernel._search.vertices)
    for auto in kernel.group:
        # var_perm is a verified permutation of assignment positions.
        assert sorted(auto.var_perm) == list(range(total))
        assert len(auto.val_maps) == total


# ------------------------------------------------------- differential parity
def test_symmetry_matches_bitset_on_known_instances(
    wf_affine, ra_1res, ra_1of
):
    for affine, k in (
        (wf_affine, 2),
        (wf_affine, 3),
        (ra_1res, 1),
        (ra_1res, 2),
        (ra_1of, 1),
    ):
        task = set_consensus_task(3, k)
        expected = BitsetKernel(affine, task).search()
        found = SymmetryKernel(affine, task).search()
        assert (found is not None) == (expected is not None), (
            affine.name,
            k,
        )
        if found is not None:
            # The witness may differ from bitset's (different tree),
            # but it must be a genuine carried map.
            assert verify_carried_map(affine, task, found), (affine.name, k)


def test_symmetry_prunes_on_symmetric_instance(wf_affine):
    task = set_consensus_task(3, 2)
    bitset = BitsetKernel(wf_affine, task)
    symmetry = SymmetryKernel(wf_affine, task)
    assert bitset.search() is None and symmetry.search() is None
    assert 0 < symmetry.nodes_explored < bitset.nodes_explored


def test_differential_fuzz_thinned_tasks(wf_affine):
    """Random thinning usually breaks the symmetry — the kernel must
    stay correct either way, and a trivial group must degenerate to the
    exact bitset tree."""
    base = set_consensus_task(3, 3)
    verdicts = set()
    trivial_groups = 0
    for seed in range(10):
        task = _thinned_task(base, seed)
        bitset = BitsetKernel(wf_affine, task)
        expected = bitset.search()
        verdicts.add(expected is not None)

        symmetry = SymmetryKernel(wf_affine, task)
        found = symmetry.search()
        assert (found is not None) == (expected is not None), seed
        if found is not None:
            assert verify_carried_map(wf_affine, task, found), seed
        if not symmetry.group:
            trivial_groups += 1
            # No verified automorphisms: same order, same tree, same
            # node count as bitset — bit-identical degeneration.
            assert symmetry.nodes_explored == bitset.nodes_explored, seed
    assert verdicts == {True, False}
    assert trivial_groups > 0


# ------------------------------------------------------- budget and resume
def test_budget_raises_with_partial_assignment(wf_affine):
    task = set_consensus_task(3, 2)
    with pytest.raises(SearchBudgetExceeded) as info:
        SymmetryKernel(wf_affine, task).search(budget=5)
    assert info.value.nodes_explored > 5 - 2  # counted up to the stop
    assert isinstance(info.value.partial_assignment, dict)


def test_resume_refused_and_requests_coerce(ra_1res):
    task = set_consensus_task(3, 2)
    with pytest.raises(ValueError, match="cannot"):
        SymmetryKernel(ra_1res, task).search(
            resume_from={object(): object()}
        )
    with pytest.raises(SearchBudgetExceeded) as info:
        MapSearch(ra_1res, task).search(budget=20)
    request = SolveRequest(
        affine=ra_1res,
        task=task,
        resume=info.value.partial_assignment,
        kernel=KERNEL_SYMMETRY,
    )
    # Resume positions encode the legacy tree, so the request silently
    # runs on a tree-identical kernel (same contract as fc).
    assert isinstance(make_searcher(request), BitsetKernel)
    assert not isinstance(make_searcher(request), SymmetryKernel)
    assert run_request(request).mapping == MapSearch(ra_1res, task).search()


# ---------------------------------------------------------- typed requests
def test_run_request_symmetry(wf_affine, ra_1res):
    result = run_request(
        SolveRequest(
            affine=ra_1res,
            task=set_consensus_task(3, 2),
            kernel=KERNEL_SYMMETRY,
        )
    )
    assert isinstance(result, SolveResult)
    assert result.solvable and result.kernel == KERNEL_SYMMETRY
    assert verify_carried_map(
        ra_1res, set_consensus_task(3, 2), result.mapping
    )

    refuted = run_request(
        SolveRequest(
            affine=wf_affine,
            task=set_consensus_task(3, 2),
            kernel=KERNEL_SYMMETRY,
        )
    )
    assert not refuted.solvable and refuted.mapping is None


# ------------------------------------------------------------ certificates
def test_symmetry_found_map_roundtrips_through_the_checker(wf_affine):
    """A map found in the quotiented tree is already concrete: it backs
    a solvable certificate the independent checker accepts as-is."""
    task = set_consensus_task(3, 3)
    kernel = SymmetryKernel(wf_affine, task)
    mapping = kernel.search()
    assert mapping is not None
    assert verify_carried_map(wf_affine, task, mapping)
    cert = solvable_cert(
        wf_affine, task, mapping, nodes_explored=kernel.nodes_explored
    )
    report = check(cert)
    assert report.valid and report.verdict == "solvable"


def test_certificates_coerce_and_stay_byte_identical(wf_affine):
    """``certificate_for(kernel="symmetry")`` coerces to the default
    tree-identical kernel, so certificate bytes never depend on it."""
    task = set_consensus_task(3, 2)
    default = certificate_for(wf_affine, task)
    via_symmetry = certificate_for(wf_affine, task, kernel=KERNEL_SYMMETRY)
    assert cert_to_bytes(via_symmetry) == cert_to_bytes(default)

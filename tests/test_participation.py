"""Tests for the participation structure of affine tasks."""

import pytest

from repro.core.participation import (
    all_participations,
    check_delta_matches_alpha,
    check_full_runs_where_defined,
    delta_empty_participations,
    participation_profile,
    solo_output_processes,
)

ZOO = [
    ("alpha_1of", "ra_1of"),
    ("alpha_2of", "ra_2of"),
    ("alpha_1res", "ra_1res"),
    ("alpha_fig5b", "ra_fig5b"),
]


def test_all_participations_count():
    assert len(all_participations(3)) == 7


@pytest.mark.parametrize("alpha_fixture,ra_fixture", ZOO)
def test_delta_nonempty_iff_alpha_positive(request, alpha_fixture, ra_fixture):
    alpha = request.getfixturevalue(alpha_fixture)
    task = request.getfixturevalue(ra_fixture)
    assert check_delta_matches_alpha(task, alpha) is None


@pytest.mark.parametrize("alpha_fixture,ra_fixture", ZOO)
def test_full_runs_where_alpha_positive(request, alpha_fixture, ra_fixture):
    alpha = request.getfixturevalue(alpha_fixture)
    task = request.getfixturevalue(ra_fixture)
    assert check_full_runs_where_defined(task, alpha) is None


def test_rtres_empty_participations(rtres_1, alpha_1res):
    """R_{1-res}: singletons have no outputs (alpha = 0 there)."""
    empty = delta_empty_participations(rtres_1)
    assert set(empty) == {
        frozenset({0}),
        frozenset({1}),
        frozenset({2}),
    }


def test_rkof_no_empty_participations(rkof_1):
    """k-obstruction-freedom: alpha >= 1 everywhere, outputs everywhere."""
    assert delta_empty_participations(rkof_1) == []


def test_solo_outputs_match_alpha(ra_fig5b, alpha_fig5b):
    solos = solo_output_processes(ra_fig5b)
    expected = frozenset(
        pid for pid in range(3) if alpha_fig5b(frozenset({pid})) >= 1
    )
    assert solos == expected
    # The figure-5b adversary: only p2 (our 1) is a solo live set.
    assert solos == frozenset({1})


def test_participation_profile_shape(ra_1res):
    profile = participation_profile(ra_1res)
    assert len(profile) == 7
    full = frozenset(range(3))
    simplices, full_runs = profile[full]
    assert full_runs == 142
    for participants, (count, runs) in profile.items():
        assert runs <= count


def test_profile_monotone_under_participation(ra_fig5b):
    profile = participation_profile(ra_fig5b)
    pairs = sorted(profile, key=len)
    for small in pairs:
        for big in pairs:
            if small < big:
                assert profile[small][0] <= profile[big][0]

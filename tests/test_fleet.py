"""The fleet tier: hashing, admission, routing, cert-verified edges.

The load-bearing guarantees:

* **placement stability** — value-equal queries always land on the same
  shard, so shard-local coalescing and memcache slices keep working
  fleet-wide;
* **graceful degradation** — a draining or dead shard is re-hashed away
  and its queries re-route; admission rejections reuse the typed
  ``overloaded`` error clients already retry;
* **verify, never trust** — an edge replica re-checks every certificate
  with the independent checker and rejects doctored ones with the typed
  ``verification_failed`` error, recording the incident.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional

import pytest

from repro.engine import Engine
from repro.fleet import (
    AdmissionController,
    BackgroundComponent,
    EdgeReplica,
    FleetRouter,
    HashRing,
    LoadReport,
    RegistrationError,
    TamperingShardProxy,
    TokenBucket,
    doctor_statement_digest,
    fixed_service_time_mix,
    register_shard,
    run_load,
    statement_digest,
)
from repro.service import (
    AsyncServiceClient,
    BackgroundServer,
    MemCache,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import ERROR_CODES, PROTOCOL_VERSION, RETRYABLE_CODES
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import SearchBudgetExceeded


def _shard() -> BackgroundServer:
    return BackgroundServer(Engine(cache=MemCache(max_entries=128)))


# ----------------------------------------------------------------------
# Hash ring
# ----------------------------------------------------------------------
def test_ring_is_deterministic_across_instances():
    nodes = ["a:1", "b:2", "c:3"]
    ring1, ring2 = HashRing(nodes), HashRing(reversed(nodes))
    keys = [statement_digest("solve", str(i)) for i in range(200)]
    assert [ring1.owner(k) for k in keys] == [ring2.owner(k) for k in keys]


def test_ring_balances_load_roughly():
    ring = HashRing([f"shard:{i}" for i in range(4)])
    keys = [statement_digest("chr", str(i)) for i in range(2000)]
    counts: Dict[str, int] = {}
    for key in keys:
        owner = ring.owner(key)
        counts[owner] = counts.get(owner, 0) + 1
    assert len(counts) == 4
    # Virtual nodes keep the split within a loose factor of fair share.
    assert max(counts.values()) < 4 * min(counts.values())


def test_ring_removal_moves_only_the_departed_nodes_keys():
    ring = HashRing(["a:1", "b:2", "c:3"])
    keys = [statement_digest("certify", str(i)) for i in range(500)]
    before = {key: ring.owner(key) for key in keys}
    ring.remove("b:2")
    moved = 0
    for key in keys:
        after = ring.owner(key)
        if before[key] == "b:2":
            assert after != "b:2"
        else:
            assert after == before[key]
            moved += 0
    assert "b:2" not in ring


def test_ring_preference_lists_distinct_nodes_owner_first():
    ring = HashRing(["a:1", "b:2", "c:3"])
    key = statement_digest("solve", "payload")
    preference = ring.preference(key)
    assert preference[0] == ring.owner(key)
    assert sorted(preference) == ["a:1", "b:2", "c:3"]
    assert ring.preference(key, 2) == preference[:2]
    assert HashRing().preference(key) == []


def test_statement_digest_separates_kind_and_payload():
    assert statement_digest("solve", "x") != statement_digest("certify", "x")
    assert statement_digest("solve", "x") != statement_digest("solve", "y")
    assert statement_digest("solve", "x") == statement_digest("solve", "x")


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_token_bucket_refills_at_rate():
    bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    assert not bucket.try_take(0.0)  # empty
    assert not bucket.try_take(0.25)  # half a token back: still short
    assert bucket.try_take(0.5 + 0.25)  # one token accrued by now


def test_admission_rate_limits_per_tenant():
    clock = [0.0]
    controller = AdmissionController(
        max_inflight=100, rate=1.0, burst=2.0, clock=lambda: clock[0]
    )
    first = controller.admit("alice", None)
    second = controller.admit("alice", None)
    assert first.admitted and second.admitted
    third = controller.admit("alice", None)
    assert not third.admitted and "rate limit" in third.reason
    # A different tenant has its own bucket.
    assert controller.admit("bob", None).admitted
    clock[0] = 1.0  # one token refilled
    assert controller.admit("alice", None).admitted
    stats = controller.stats()
    assert stats["rejected_rate"] == {"alice": 1}
    assert sorted(stats["tenants"]) == ["alice", "bob"]


def test_admission_sheds_low_lanes_first():
    controller = AdmissionController(max_inflight=4, rate=1000.0, burst=1000.0)
    # Capacities: interactive 4, batch 3, sweep 2.
    held = [controller.admit("t", "interactive") for _ in range(2)]
    assert all(d.admitted for d in held)
    sweep = controller.admit("t", "sweep")
    assert not sweep.admitted and "lane 'sweep' shed" in sweep.reason
    batch = controller.admit("t", "batch")
    assert batch.admitted  # 2 < 3
    interactive = controller.admit("t", "interactive")
    assert interactive.admitted  # 3 < 4
    assert not controller.admit("t", "batch").admitted  # 4 > 3
    assert not controller.admit("t", "interactive").admitted  # at capacity
    for decision in held + [batch, interactive]:
        controller.release(decision)
    assert controller.inflight == 0
    # Unlabeled requests ride the interactive lane: never penalized.
    assert controller.admit("t", None).lane == "interactive"


# ----------------------------------------------------------------------
# Scripted wire servers (protocol doubles; no engine behind them)
# ----------------------------------------------------------------------
class ScriptedServer:
    """A threaded line-protocol server answering from a callback."""

    def __init__(self, respond: Callable[[Dict[str, Any]], Optional[dict]]):
        self.respond = respond
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.port = self._sock.getsockname()[1]
        self._running = True
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self) -> None:
        while self._running:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        handle = conn.makefile("rwb")
        try:
            while True:
                line = handle.readline()
                if not line:
                    return
                response = self.respond(json.loads(line))
                if response is None:
                    return  # scripted connection drop
                handle.write(json.dumps(response).encode("utf-8") + b"\n")
                handle.flush()
        except (ConnectionResetError, BrokenPipeError, ValueError):
            pass
        finally:
            conn.close()

    def close(self) -> None:
        self._running = False
        self._sock.close()

    def __enter__(self) -> "ScriptedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _ok(request: Dict[str, Any]) -> Dict[str, Any]:
    return {"v": 1, "id": request.get("id"), "ok": True, "pong": True}


def _error(request: Dict[str, Any], code: str) -> Dict[str, Any]:
    return {
        "v": 1,
        "id": request.get("id"),
        "ok": False,
        "error": {"code": code, "message": f"scripted {code}"},
    }


# ----------------------------------------------------------------------
# Client retry (satellite 1)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", sorted(RETRYABLE_CODES))
def test_sync_client_retries_transient_codes_once(code):
    answers = {"count": 0}

    def respond(request):
        answers["count"] += 1
        return _error(request, code) if answers["count"] == 1 else _ok(request)

    with ScriptedServer(respond) as server:
        with ServiceClient(
            port=server.port, retries=1, retry_backoff=0.01
        ) as client:
            assert client.ping()
            assert client.retried == 1


@pytest.mark.parametrize("code", sorted(RETRYABLE_CODES))
def test_async_client_retries_transient_codes_once(code):
    answers = {"count": 0}

    def respond(request):
        answers["count"] += 1
        return _error(request, code) if answers["count"] == 1 else _ok(request)

    async def scenario(port: int) -> int:
        async with AsyncServiceClient(
            port=port, retries=1, retry_backoff=0.01
        ) as client:
            assert await client.ping()
            return client.retried

    with ScriptedServer(respond) as server:
        assert asyncio.run(scenario(server.port)) == 1


def test_clients_with_retries_zero_surface_the_raw_error():
    with ScriptedServer(lambda r: _error(r, "overloaded")) as server:
        with ServiceClient(port=server.port, retries=0) as client:
            with pytest.raises(ServiceError) as info:
                client.ping()
            assert info.value.code == "overloaded"

        async def scenario() -> None:
            async with AsyncServiceClient(
                port=server.port, retries=0
            ) as client:
                await client.ping()

        with pytest.raises(ServiceError) as info:
            asyncio.run(scenario())
        assert info.value.code == "overloaded"


def test_sync_client_does_not_retry_permanent_codes():
    answers = {"count": 0}

    def respond(request):
        answers["count"] += 1
        return _error(request, "bad_request")

    with ScriptedServer(respond) as server:
        with ServiceClient(port=server.port, retries=1) as client:
            with pytest.raises(ServiceError):
                client.ping()
            assert client.retried == 0 and answers["count"] == 1


# ----------------------------------------------------------------------
# Every typed error code round-trips through both clients (satellite 3)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", sorted(ERROR_CODES))
def test_every_error_code_round_trips_through_the_sync_client(code):
    with ScriptedServer(lambda r: _error(r, code)) as server:
        with ServiceClient(port=server.port, retries=0) as client:
            if code == "budget_exceeded":
                with pytest.raises(SearchBudgetExceeded):
                    client.ping()
            else:
                with pytest.raises(ServiceError) as info:
                    client.ping()
                assert info.value.code == code


@pytest.mark.parametrize("code", sorted(ERROR_CODES))
def test_every_error_code_round_trips_through_the_async_client(code):
    async def scenario(port: int) -> None:
        async with AsyncServiceClient(port=port, retries=0) as client:
            await client.ping()

    with ScriptedServer(lambda r: _error(r, code)) as server:
        if code == "budget_exceeded":
            with pytest.raises(SearchBudgetExceeded):
                asyncio.run(scenario(server.port))
        else:
            with pytest.raises(ServiceError) as info:
                asyncio.run(scenario(server.port))
            assert info.value.code == code


# ----------------------------------------------------------------------
# Shard registration
# ----------------------------------------------------------------------
def test_registration_rejects_shards_without_a_memcache():
    # A plain engine-backed server reports no memcache tier.
    with BackgroundServer(Engine()) as bare:
        with pytest.raises(RegistrationError) as info:
            asyncio.run(register_shard(bare.host, bare.port))
        assert "memcache" in str(info.value)


def test_registration_rejects_wrong_protocol_versions():
    def respond(request):
        if request.get("op") == "ping":
            return _ok(request)
        return {
            "v": 1,
            "id": request.get("id"),
            "ok": True,
            "stats": {
                "server": {"protocol_version": 99, "memcache_capacity": 64}
            },
        }

    with ScriptedServer(respond) as server:
        with pytest.raises(RegistrationError) as info:
            asyncio.run(register_shard("127.0.0.1", server.port))
        assert "protocol" in str(info.value)


def test_registration_accepts_a_real_shard():
    with _shard() as shard:
        info = asyncio.run(register_shard(shard.host, shard.port))
        assert info.memcache_capacity == 128
        assert info.node_id == f"{shard.host}:{shard.port}"


# ----------------------------------------------------------------------
# Router end-to-end
# ----------------------------------------------------------------------
@pytest.fixture()
def fleet2():
    """Two live shards behind a router, plus direct shard handles."""
    with _shard() as s1, _shard() as s2:
        router = FleetRouter(
            [(s1.host, s1.port), (s2.host, s2.port)], forward_timeout=120.0
        )
        with BackgroundComponent(router) as front:
            yield front, router, s1, s2


def test_router_responses_are_byte_identical_to_shard_responses(fleet2):
    front, _router, s1, _s2 = fleet2
    with ServiceClient(front.host, front.port) as via_router:
        routed = via_router.query_response("chr", (2, 1))
    with ServiceClient(s1.host, s1.port) as direct:
        straight = direct.query_response("chr", (2, 1))
    assert routed["value"] == straight["value"]
    assert routed["kind"] == straight["kind"]


def test_router_placement_is_stable_so_memcache_hits(fleet2):
    front, _router, _s1, _s2 = fleet2
    with ServiceClient(front.host, front.port) as client:
        cold = client.query_response("chr", (3, 1))
        warm = client.query_response("chr", (3, 1))
    assert not cold["cache_hit"]
    # The repeat reached the same shard, whose memcache slice owns it.
    assert warm["cache_hit"]
    assert warm["value"] == cold["value"]


def test_router_preserves_shard_local_coalescing(fleet2):
    front, _router, _s1, _s2 = fleet2
    responses = []
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def fire():
        with ServiceClient(front.host, front.port, timeout=120.0) as client:
            barrier.wait(timeout=30)
            response = client.query_response("sleep", (0.3, "fleet-coalesce"))
            with lock:
                responses.append(response)

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert len(responses) == 4
    values = {response["value"] for response in responses}
    assert len(values) == 1
    # Identical statements hash to one shard, whose batcher collapses
    # the burst: every request but the executing one reports coalesced.
    assert sum(response["coalesced"] for response in responses) == 3


def test_router_rehashes_a_dead_shard_and_keeps_serving(fleet2):
    front, router, s1, s2 = fleet2
    with ServiceClient(front.host, front.port, retries=0) as client:
        for index in range(6):
            client.query("sleep", (0.0, f"warm-{index}"))
        s2.stop()  # drains and closes its listener + connections
        # Every statement still gets an answer: the router retires the
        # dead shard on first contact and re-routes to the survivor.
        for index in range(6):
            client.query("sleep", (0.0, f"after-{index}"))
        stats = client.stats()
    assert router.rehashes == 1
    live = {
        node: shard["live"] for node, shard in stats["fleet"]["shards"].items()
    }
    assert live[f"{s2.host}:{s2.port}"] is False
    assert live[f"{s1.host}:{s1.port}"] is True
    assert stats["fleet"]["incidents"]
    assert stats["fleet"]["incidents"][-1]["kind"] == "shard_retired"


def test_router_admission_rejects_with_the_typed_overloaded_error():
    with _shard() as s1:
        router = FleetRouter(
            [(s1.host, s1.port)],
            admission=AdmissionController(
                max_inflight=16, rate=1e-6, burst=1.0
            ),
        )
        with BackgroundComponent(router) as front:
            with ServiceClient(front.host, front.port, retries=0) as client:
                client.query("chr", (2, 1))  # spends the only token
                with pytest.raises(ServiceError) as info:
                    client.query("chr", (2, 1))
                assert info.value.code == "overloaded"
                stats = client.stats()
    assert stats["admission"]["admitted_total"] >= 1
    assert stats["admission"]["rejected_rate"] == {"default": 1}


def test_router_stats_and_healthz_expose_the_fleet(fleet2):
    front, _router, _s1, _s2 = fleet2
    with ServiceClient(front.host, front.port) as client:
        stats = client.stats()
    assert stats["server"]["role"] == "router"
    assert stats["server"]["protocol_version"] == PROTOCOL_VERSION
    assert len(stats["fleet"]["ring_nodes"]) == 2
    with socket.create_connection((front.host, front.port), timeout=30) as sock:
        sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        raw = b""
        while b"\r\n\r\n" not in raw:
            raw += sock.recv(4096)
        body = raw.split(b"\r\n\r\n", 1)[1]
        while not body.strip():
            body += sock.recv(4096)
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["role"] == "router"
    assert health["protocol_version"] == PROTOCOL_VERSION


# ----------------------------------------------------------------------
# Edge replicas: verify, never trust
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cert_inputs(ra_1res):
    return ra_1res, set_consensus_task(3, 2)


def test_replica_serves_verified_certificates(cert_inputs):
    affine, task = cert_inputs
    with _shard() as shard:
        replica = EdgeReplica([(shard.host, shard.port)])
        with BackgroundComponent(replica) as edge:
            with ServiceClient(edge.host, edge.port) as client:
                response = client.query_response(
                    "certify", (affine, task, None)
                )
                assert response["verified"] is True
                cert = client.certify(affine, task)
                assert cert["kind"] == "solvable"
                # check is answered by the replica's own checker.
                report = client.check(cert)
                assert report["valid"] and report["verdict"] == "solvable"
                with pytest.raises(ServiceError) as info:
                    client.query("chr", (2, 1))
                assert info.value.code == "unknown_kind"
        assert replica.metrics.counter("certs_verified_total") >= 1
        assert replica.metrics.counter("local_checks_total") == 1
    # The replica's value passthrough is byte-identical to the shard's.
    with _shard() as shard:
        replica = EdgeReplica([(shard.host, shard.port)])
        with BackgroundComponent(replica) as edge:
            with ServiceClient(edge.host, edge.port) as via_edge:
                edge_response = via_edge.query_response(
                    "certify", (affine, task, None)
                )
            with ServiceClient(shard.host, shard.port) as direct:
                shard_response = direct.query_response(
                    "certify", (affine, task, None)
                )
    assert edge_response["value"] == shard_response["value"]


class _ProxyLoop:
    """Run a TamperingShardProxy on its own event-loop thread."""

    def __init__(self, upstream):
        self.proxy = TamperingShardProxy(upstream)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )

    def __enter__(self) -> TamperingShardProxy:
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.proxy.start(), self._loop
        ).result(30)
        return self.proxy

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.proxy.close(), self._loop
        ).result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)


def test_replica_rejects_a_doctored_certificate(cert_inputs):
    affine, task = cert_inputs
    with _shard() as shard:
        with _ProxyLoop((shard.host, shard.port)) as proxy:
            replica = EdgeReplica([(proxy.host, proxy.port)])
            with BackgroundComponent(replica) as edge:
                with ServiceClient(edge.host, edge.port, retries=0) as client:
                    with pytest.raises(ServiceError) as info:
                        client.certify(affine, task)
    assert info.value.code == "verification_failed"
    assert proxy.tampered == 1
    assert replica.metrics.counter("certs_rejected_total") == 1
    assert replica.incidents
    incident = replica.incidents[-1]
    assert incident["kind"] == "bad_certificate"
    assert incident["reason"] == "statement_digest_mismatch"


def test_replica_reroutes_around_a_tampering_shard(cert_inputs):
    affine, task = cert_inputs
    with _shard() as shard:
        with _ProxyLoop((shard.host, shard.port)) as proxy:
            replica = EdgeReplica(
                [(proxy.host, proxy.port), (shard.host, shard.port)]
            )
            with BackgroundComponent(replica) as edge:
                # Pin the preference order so the dishonest shard is
                # always tried first (ring order is hash-determined).
                tamperer = f"{proxy.host}:{proxy.port}"
                honest = f"{shard.host}:{shard.port}"
                replica.ring.preference = (  # type: ignore[method-assign]
                    lambda key, count=None: [tamperer, honest]
                )
                with ServiceClient(edge.host, edge.port) as client:
                    cert = client.certify(affine, task)
    assert cert["kind"] == "solvable"
    assert proxy.tampered == 1
    assert replica.metrics.counter("certs_rejected_total") == 1
    assert replica.metrics.counter("certs_verified_total") == 1
    assert replica.metrics.counter("certs_rerouted_total") == 1
    assert replica.incidents[-1]["shard"] == tamperer


def test_doctor_statement_digest_leaves_the_original_intact():
    cert = {"statement": {"task_digest": "ab" * 32}, "kind": "solvable"}
    doctored = doctor_statement_digest(cert)
    assert doctored["statement"]["task_digest"] == "0" * 64
    assert cert["statement"]["task_digest"] == "ab" * 32


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
def test_fixed_service_time_mix_is_distinct_and_salted():
    mix = fixed_service_time_mix(8, 0.01, salt="a")
    assert len({payload for _, payload in mix}) == 8
    assert mix != fixed_service_time_mix(8, 0.01, salt="b")


def test_run_load_reports_exact_counts():
    with _shard() as shard:
        report = run_load(
            shard.host,
            shard.port,
            fixed_service_time_mix(8, 0.01, salt="loadtest"),
            clients=4,
            cycles=2,
        )
    assert isinstance(report, LoadReport)
    assert report.queries == 16 and report.ok == 16 and report.errors == 0
    assert report.rps > 0 and report.p99_ms >= report.p50_ms >= 0
    encoded = report.to_dict()
    assert encoded["queries"] == 16 and encoded["error_codes"] == {}


def test_loadgen_cli_runs_against_a_live_service(capsys):
    from repro.cli import main

    with _shard() as shard:
        exit_code = main(
            [
                "loadgen",
                "--port",
                str(shard.port),
                "--mix",
                "chr",
                "--clients",
                "2",
                "--json",
            ]
        )
    assert exit_code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["errors"] == 0 and report["ok"] == report["queries"]

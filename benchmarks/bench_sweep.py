"""Sweep economics: cells/s, compact-vs-naive memory, resume overhead.

Three measurements around :mod:`repro.sweep`, landing in
``BENCH_landscape.json`` at the repo root for the trajectory gate:

* **throughput** — the ``n3-smoke`` grid end to end (cells per second,
  informational: absolute rates track the CI machine and are not
  gated);
* **compression** — the interned :class:`~repro.sweep.compact.
  CompactComplex` versus the naive fully-materialized
  ``SimplicialComplex`` closure on ``Chr^2 s`` (n=3), the ratio the
  whole compact layer exists to win;
* **resume overhead** — a sweep interrupted after half its cells and
  resumed, versus one uninterrupted run: the resumed path must
  recompute **zero** cells, produce a byte-identical artifact, and cost
  only checkpoint-reload overhead.

Verdict counts are parity-gated: the grid is content-addressed and the
kernels are tree-identical, so any drift in solvable/unsolvable/budget
is a correctness change, not noise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import render_mapping
from repro.sweep import GRID_PRESETS, SweepDriver, compact_census
from repro.topology import chr_complex

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_landscape.json"

GRID = GRID_PRESETS["n3-smoke"]


def _timed(stage):
    started = time.perf_counter()
    value = stage()
    return value, time.perf_counter() - started


def bench_sweep(tmp_path):
    cells = len(GRID.cells())

    # Warmup: fill the in-process memos (R_A constructions, setcon
    # caches) once, so straight-vs-resumed compares checkpoint
    # mechanics instead of cold-import effects.
    SweepDriver(GRID, tmp_path / "warmup").run()

    # Throughput: one uninterrupted sweep (the reference artifact too).
    straight = SweepDriver(GRID, tmp_path / "straight")
    status, t_straight = _timed(lambda: straight.run())
    assert status["complete"]
    reference = straight.write_artifact(tmp_path / "straight.json")
    summary = status["artifact"]["summary"]

    # Compression: interned vs naive on the ambient complex Chr^2 s.
    census = compact_census(chr_complex(3, 2))

    # Resume: interrupt after half the grid, then continue.
    half = cells // 2

    def interrupted():
        SweepDriver(GRID, tmp_path / "resumed").run(limit=half)
        return SweepDriver(GRID, tmp_path / "resumed").run(resume=True)

    resumed_status, t_resumed = _timed(interrupted)
    assert resumed_status["complete"]
    assert resumed_status["resumed"] == half
    resumed_bytes = SweepDriver(GRID, tmp_path / "resumed").write_artifact(
        tmp_path / "resumed.json"
    )
    assert resumed_bytes == reference  # byte-identical, kill or no kill

    # A third pass over a complete checkpoint recomputes nothing.
    replay = SweepDriver(GRID, tmp_path / "resumed").run(resume=True)
    assert replay["complete"]

    report = {
        "workload": {
            "grid": GRID.name,
            "grid_cells": cells,
            "adversaries": summary["adversaries"],
        },
        "verdicts": summary["verdicts"],
        "resume": {
            "interrupted_after": half,
            "recomputed_cells": replay["computed"],
        },
        "t_straight_s": round(t_straight, 4),
        "t_resumed_s": round(t_resumed, 4),
        "cells_per_s": round(cells / t_straight, 1),
        "resume_overhead_ratio": round(t_resumed / t_straight, 2),
        "compact_vs_naive_memory_ratio": census["compression_ratio"],
        "compact": {
            "complex": "chr(3,2)",
            "simplices": census["simplices"],
            "naive_bytes": census["naive_bytes"],
            "interned_bytes": census["interned_bytes"],
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("sweep economics:", report))
    print(f"wrote {OUTPUT}")

    # The compact representation must actually beat the naive one.
    assert report["compact_vs_naive_memory_ratio"] > 1
    # Resuming replays stubs instead of recomputing cells.
    assert report["resume"]["recomputed_cells"] == 0

"""E6 — Figure 6: the concurrency maps of the two example models.

The figure colors each simplex of ``Chr s`` black/orange/green for
concurrency level 0/1/2; the benchmark regenerates the level census:

* (a) 1-obstruction-freedom: 18 at level 0, 31 at level 1;
* (b) the running example:    4 at level 0, 14 at level 1, 31 at 2.
"""

from repro.analysis import render_mapping
from repro.core.concurrency import concurrency_census, concurrency_map


def bench_figure6a_concurrency(benchmark, chr1, alpha_1of):
    census = benchmark(concurrency_census, chr1, alpha_1of)
    print()
    print(render_mapping("Figure 6a — Conc levels (1-OF):", census))
    assert census == {0: 18, 1: 31}


def bench_figure6b_concurrency(benchmark, chr1, alpha_fig5b):
    census = benchmark(concurrency_census, chr1, alpha_fig5b)
    print()
    print(render_mapping("Figure 6b — Conc levels (fig5b):", census))
    assert census == {0: 4, 1: 14, 2: 31}


def bench_concurrency_map_monotone(benchmark, chr1, alpha_fig5b):
    """Level monotonicity under inclusion, over all simplex pairs."""

    def check():
        mapping = concurrency_map(chr1, alpha_fig5b)
        items = sorted(mapping.items(), key=lambda kv: len(kv[0]))
        for small, level_small in items:
            for big, level_big in items:
                if small < big and level_small > level_big:
                    return False
        return True

    assert benchmark(check)


def bench_star_structure(benchmark, chr1, alpha_fig5b):
    """The figure's observation: level-k simplices lie in the star of
    the critical simplices of power k (and no higher)."""
    from repro.core.critical import CriticalStructure

    def check():
        structure = CriticalStructure(alpha_fig5b)
        mapping = concurrency_map(chr1, alpha_fig5b)
        for sigma, level in mapping.items():
            if level == 0:
                continue
            powers = [
                alpha_fig5b(next(iter(theta)).carrier)
                for theta in structure.cs(sigma)
            ]
            assert max(powers) == level
        return True

    assert benchmark(check)

"""E3 — Figure 3: valid immediate-snapshot outputs, regenerated.

The figure's two example runs for three processes:

* (a) the ordered run ``{p2}, {p1}, {p3}`` — nested views of sizes
  1, 2, 3;
* (b) the synchronous run ``{p1, p2, p3}`` — all views full.

Both are produced twice: combinatorially (ordered partitions) and
operationally (the Borowsky–Gafni protocol on the scheduler), and the
two roads agree.
"""

import random

from repro.analysis import render_table
from repro.runtime.immediate_snapshot import standalone_is_protocol
from repro.runtime.memory import SharedMemory
from repro.runtime.scheduler import Scheduler
from repro.topology.enumeration import (
    fubini_number,
    is_valid_is_views,
    ordered_set_partitions,
    views_of_partition,
)


def bench_enumerate_all_is_runs(benchmark):
    """Enumerate every 3-process IS run (Figure 3 shows two of them)."""

    def enumerate_runs():
        return [
            views_of_partition(partition)
            for partition in ordered_set_partitions(range(3))
        ]

    runs = benchmark(enumerate_runs)
    assert len(runs) == fubini_number(3)
    assert all(is_valid_is_views(views) for views in runs)

    ordered = views_of_partition(
        (frozenset({1}), frozenset({0}), frozenset({2}))
    )
    sync = views_of_partition((frozenset({0, 1, 2}),))
    print()
    print(
        render_table(
            ["run", "p1 sees", "p2 sees", "p3 sees"],
            [
                [
                    "{p2},{p1},{p3}",
                    sorted(ordered[0]),
                    sorted(ordered[1]),
                    sorted(ordered[2]),
                ],
                [
                    "{p1,p2,p3}",
                    sorted(sync[0]),
                    sorted(sync[1]),
                    sorted(sync[2]),
                ],
            ],
        )
    )
    assert ordered[1] == frozenset({1})
    assert ordered[0] == frozenset({0, 1})
    assert ordered[2] == frozenset({0, 1, 2})
    assert all(view == frozenset({0, 1, 2}) for view in sync.values())


def run_bg_protocol(n, seed):
    rng = random.Random(seed)
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {i: standalone_is_protocol(i, n, memory, i) for i in range(n)}
    )
    while len(scheduler.outputs) < n:
        alive = [i for i in range(n) if i not in scheduler.outputs]
        scheduler.step(rng.choice(alive))
    return {i: frozenset(view) for i, view in scheduler.outputs.items()}


def bench_borowsky_gafni_protocol(benchmark):
    """Time one randomized execution of the BG level-descent protocol."""
    views = benchmark(run_bg_protocol, 3, 42)
    assert is_valid_is_views(views)


def bench_bg_outputs_are_enumerated_runs(benchmark):
    """Operational outputs always match some combinatorial run."""
    expected = {
        frozenset(views_of_partition(p).items())
        for p in ordered_set_partitions(range(3))
    }

    def sweep():
        hits = 0
        for seed in range(120):
            views = run_bg_protocol(3, seed)
            assert frozenset(views.items()) in expected
            hits += 1
        return hits

    assert benchmark(sweep) == 120

"""Simulator throughput and the differential-oracle agreement gate.

Two claims are committed here.  First, throughput: exploring the whole
:data:`repro.sim.oracle.STANDARD_GRID` — every fault plan x schedule of
every committed (task, adversary) pair — is cheap enough to run on each
CI pass, recorded as ``schedules_per_s`` (absolute, ungated; it tracks
the machine).  Second, the structural facts the CI gate pins exactly:
the grid's shape (cases, schedules, deliveries — the runtime is
deterministic, so the delivery count is a parity metric, not noise) and
the oracle verdict itself: ``oracle_agreement_rate`` must be 1.0 with
zero disagreements.  A simulator/FACT disagreement therefore fails the
benchmark loudly *and* moves a gated field, and the offending schedule
is printed as a replayable artifact pointer.

Everything lands in ``BENCH_sim.json``; see ``tools/bench_gate.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs
from repro.analysis import render_mapping
from repro.sim import oracle_params, simulate_params, standard_grid

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sim.json"

ROUNDS = 3


def _best_of(rounds, stage):
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = stage()
        best = min(best, time.perf_counter() - started)
    return value, best


def bench_sim():
    obs.disable()  # committed numbers run with tracing off
    grid = standard_grid()
    crash_cases = [c for c in grid if c.protocol == "hitting-set-consensus"]
    byzantine_cases = [c for c in grid if c.protocol != "hitting-set-consensus"]

    # -- simulator throughput over the whole grid ----------------------
    def run_grid():
        return [simulate_params(*case.payload()) for case in grid]

    reports, grid_s = _best_of(ROUNDS, run_grid)
    schedules_total = sum(report["schedules"] for report in reports)
    deliveries_total = sum(report["deliveries"] for report in reports)
    schedules_per_s = schedules_total / max(grid_s, 1e-9)

    # Determinism audit: a second sweep must be byte-identical.
    again = [simulate_params(*case.payload()) for case in grid]
    assert json.dumps(again, sort_keys=True) == json.dumps(
        reports, sort_keys=True
    )

    # -- the differential oracle over the committed grid ---------------
    def run_oracle():
        return [oracle_params(*case.payload()) for case in grid]

    verdicts, oracle_s = _best_of(1, run_oracle)
    disagreements = [
        case.name
        for case, verdict in zip(grid, verdicts)
        if not verdict["agree"]
    ]
    for case, verdict in zip(grid, verdicts):
        if not verdict["agree"] and verdict["artifact"] is not None:
            print(
                f"DISAGREEMENT {case.name}: replayable schedule "
                f"({len(verdict['artifact']['events'])} events) — "
                "write it out with `repro oracle --artifact-dir`"
            )
    agreement_rate = (len(grid) - len(disagreements)) / len(grid)

    report = {
        "workload": {
            "cases": len(grid),
            "crash_cases": len(crash_cases),
            "byzantine_cases": len(byzantine_cases),
            "rounds": ROUNDS,
            "schedules_total": schedules_total,
        },
        "deliveries_total": deliveries_total,
        "schedules_per_s": round(schedules_per_s, 0),
        "t_grid_sim_s": round(grid_s, 6),
        "t_grid_oracle_s": round(oracle_s, 6),
        "oracle_agreement_rate": round(agreement_rate, 3),
        "disagreements": len(disagreements),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("simulator grid:", report))
    print(f"wrote {OUTPUT}")

    # The oracle gate: every committed pair agrees, both regimes present.
    assert crash_cases and byzantine_cases
    assert len(grid) >= 12
    assert not disagreements, disagreements

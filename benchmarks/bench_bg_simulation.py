"""E19 — the BG simulation substrate.

Times resilient simulations (2 simulators, 3–5 simulated processes,
full-information codes) and validates the BG guarantees on every run:
identical histories across simulators, snapshot self-inclusion and
monotonicity, and the ``>= n - f`` progress bound under crashes.
Includes the safe-agreement substrate in isolation.
"""

from repro.analysis import render_table
from repro.protocols.safe_agreement import fuzz_safe_agreement
from repro.runtime.bg_simulation import (
    check_simulated_history,
    full_information_code,
    run_bg_simulation,
)


def bench_bg_crash_free(benchmark):
    codes = {j: full_information_code(2) for j in range(3)}

    def run():
        outcome = run_bg_simulation(codes, n_simulators=2, seed=1)
        assert outcome.completed_simulated() == frozenset({0, 1, 2})
        assert outcome.histories_agree()
        return outcome

    benchmark(run)


def bench_bg_with_crashes(benchmark):
    codes = {j: full_information_code(2) for j in range(3)}

    def sweep():
        completed = []
        for seed in range(10):
            outcome = run_bg_simulation(
                codes,
                n_simulators=2,
                crash_simulators={1: 10 + seed},
                seed=seed,
            )
            assert len(outcome.completed_simulated()) >= 2
            assert outcome.histories_agree()
            for j, history in outcome.merged_histories().items():
                check_simulated_history(j, history)
            completed.append(len(outcome.completed_simulated()))
        return completed

    completed = benchmark(sweep)
    print()
    print(
        render_table(
            ["crash seed", "simulated completed (of 3, f=1)"],
            list(enumerate(completed)),
        )
    )


def bench_bg_scale_simulated(benchmark):
    codes = {j: full_information_code(2) for j in range(5)}

    def run():
        outcome = run_bg_simulation(codes, n_simulators=2, seed=3)
        assert outcome.completed_simulated() == frozenset(range(5))
        return outcome

    benchmark(run)


def bench_safe_agreement(benchmark):
    benchmark(fuzz_safe_agreement, 3, 40, 2)

"""Worker-pool economics: affinity, dispatch overhead, concurrency.

Three measurements, all machine-independent by construction, land in
``BENCH_workers.json``:

* **Affinity routing** — 20 solve jobs over 2 distinct solver setups,
  submitted one at a time against an idle pool, must pin deterministic
  ally: every job after each setup's first lands on the worker whose
  setup is warm (hit rate exactly ``(jobs - setups) / jobs``).
* **Dispatch overhead** — a batch of sleep jobs through a one-worker
  pool versus running the same specs in-process.  The sleep time
  dominates, so the ratio isolates submit/route/ship/collect overhead;
  it must stay a small constant factor regardless of the host.
* **Concurrency** — the same sleep batch through one worker versus
  two.  Sleeping is not CPU-bound, so even a single-core box must show
  real overlap (speedup near the worker count); this is the pool's
  scheduling working, not the machine's parallelism.

The pool's failure counters ride along as parity metrics: a healthy
benchmark run restarts zero workers and re-dispatches zero jobs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import render_mapping
from repro.engine import JobSpec
from repro.solver import SolveRequest
from repro.tasks.set_consensus import set_consensus_task
from repro.workers import WorkerPool

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_workers.json"

AFFINITY_JOBS = 20
SLEEP_JOBS = 20
SLEEP_SECONDS = 0.02


def _affinity_specs(ra_1of, ra_1res):
    task = set_consensus_task(3, 2)
    setups = [ra_1of, ra_1res]
    return [
        JobSpec(
            "solve",
            (SolveRequest(affine=setups[index % len(setups)], task=task),),
        )
        for index in range(AFFINITY_JOBS)
    ], len(setups)


def _sleep_specs():
    return [
        JobSpec("sleep", (SLEEP_SECONDS, f"job-{index}"))
        for index in range(SLEEP_JOBS)
    ]


def _timed(stage):
    started = time.perf_counter()
    value = stage()
    return value, time.perf_counter() - started


def bench_workers(ra_1of, ra_1res):
    # ------------------------------------------------------------------
    # Affinity: one-at-a-time submissions against an idle 2-worker pool
    # pin deterministically — no spill is ever forced, so every job
    # after a setup's first submission is a hit.
    specs, distinct_setups = _affinity_specs(ra_1of, ra_1res)
    with WorkerPool(2) as pool:
        for index, spec in enumerate(specs):
            pool.submit(spec, index=index)
            pool.drain()
        affinity_stats = pool.stats()

    # ------------------------------------------------------------------
    # Dispatch overhead: sleep-dominated batch, pool vs in-process.
    sleep_specs = _sleep_specs()
    _, t_inprocess = _timed(
        lambda: [spec.run() for spec in sleep_specs]
    )
    with WorkerPool(1) as pool:
        results_1, t_pool_1 = _timed(
            lambda: pool.run_batch(list(enumerate(sleep_specs)))
        )
    assert all(result.ok for result in results_1)

    # ------------------------------------------------------------------
    # Concurrency: the same batch through two workers must overlap.
    with WorkerPool(2) as pool:
        results_2, t_pool_2 = _timed(
            lambda: pool.run_batch(list(enumerate(sleep_specs)))
        )
    assert all(result.ok for result in results_2)
    assert [r.value for r in results_2] == [r.value for r in results_1]

    report = {
        "workload": {
            "affinity_jobs": AFFINITY_JOBS,
            "distinct_setups": distinct_setups,
            "sleep_jobs": SLEEP_JOBS,
        },
        "affinity": {
            "routed": affinity_stats["affinity_routed"],
            "hits": affinity_stats["affinity_hits"],
            "hit_rate": round(affinity_stats["affinity_hit_rate"], 4),
        },
        "failures": {
            "worker_restarts": affinity_stats["worker_restarts"],
            "redispatched": affinity_stats["redispatched"],
            "codec_errors": affinity_stats["codec_errors"],
        },
        "t_inprocess_s": round(t_inprocess, 4),
        "t_pool_jobs1_s": round(t_pool_1, 4),
        "t_pool_jobs2_s": round(t_pool_2, 4),
        "dispatch_overhead_ratio": round(t_pool_1 / t_inprocess, 3),
        "saturation": {
            "speedup_jobs2": round(t_pool_1 / t_pool_2, 2),
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("worker pool economics:", report))
    print(f"wrote {OUTPUT}")

    # Deterministic by construction: every post-first submission pins.
    expected_rate = (AFFINITY_JOBS - distinct_setups) / AFFINITY_JOBS
    assert report["affinity"]["hits"] == AFFINITY_JOBS - distinct_setups
    assert abs(report["affinity"]["hit_rate"] - expected_rate) < 1e-9
    assert report["failures"]["worker_restarts"] == 0
    assert report["failures"]["redispatched"] == 0
    assert report["failures"]["codec_errors"] == 0
    # Sleep time dominates: dispatch overhead is a small constant.
    assert report["dispatch_overhead_ratio"] < 3.0
    # Two workers overlap sleep-bound jobs even on one core.
    assert report["saturation"]["speedup_jobs2"] > 1.2

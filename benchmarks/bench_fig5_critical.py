"""E5 — Figure 5: critical simplices for the two example models.

* (a) the α-model with ``alpha(P) = min(|P|, 1)`` (1-obstruction-
  freedom): 7 critical simplices in ``Chr s``;
* (b) the adversary ``{p2}, {p1,p3}`` + supersets: 15.

Also validates the structural results about their distribution
(Lemma 3 / Corollary 4 / Lemma 11) over the whole of ``Chr s``.
"""

from repro.core.critical import CriticalStructure, is_critical
from repro.core.theorems import (
    check_corollary4,
    check_critical_distribution,
    check_critical_view_uniqueness,
    full_participation_simplices,
)


def count_critical(chr1, alpha):
    return [
        frozenset(sigma)
        for sigma in chr1.simplices
        if is_critical(sigma, alpha)
    ]


def bench_figure5a_critical_census(benchmark, chr1, alpha_1of):
    crit = benchmark(count_critical, chr1, alpha_1of)
    by_dim = {}
    for sigma in crit:
        by_dim[len(sigma) - 1] = by_dim.get(len(sigma) - 1, 0) + 1
    print(f"\nFigure 5a — critical simplices (1-OF): {len(crit)}, by dim {by_dim}")
    assert len(crit) == 7


def bench_figure5b_critical_census(benchmark, chr1, alpha_fig5b):
    crit = benchmark(count_critical, chr1, alpha_fig5b)
    print(f"\nFigure 5b — critical simplices (fig5b): {len(crit)}")
    assert len(crit) == 15


def bench_lemma3_distribution(benchmark, alpha_fig5b):
    simplices = full_participation_simplices(3)

    def sweep():
        structure = CriticalStructure(alpha_fig5b)
        return all(
            check_critical_distribution(sigma, alpha_fig5b, structure)
            for sigma in simplices
        )

    assert benchmark(sweep)


def bench_corollary4(benchmark, chr1, alpha_1res):
    def sweep():
        structure = CriticalStructure(alpha_1res)
        return all(
            check_corollary4(frozenset(sigma), alpha_1res, structure)
            for sigma in chr1.simplices
        )

    assert benchmark(sweep)


def bench_lemma11_uniqueness(benchmark, chr1, alpha_fig5b):
    def sweep():
        structure = CriticalStructure(alpha_fig5b)
        return all(
            check_critical_view_uniqueness(
                frozenset(sigma), alpha_fig5b, structure
            )
            for sigma in chr1.simplices
        )

    assert benchmark(sweep)

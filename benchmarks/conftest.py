"""Shared fixtures for the benchmark harness.

Every ``bench_figN_*.py`` module regenerates one figure (or theorem) of
the paper: it prints the reproduced data (run pytest with ``-s`` to see
it) and asserts the expected shape, while pytest-benchmark times the
underlying computation.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
    wait_free_alpha,
)
from repro.core import r_affine
from repro.topology import chr_complex


@pytest.fixture(scope="session")
def chr1():
    return chr_complex(3, 1)


@pytest.fixture(scope="session")
def chr2():
    return chr_complex(3, 2)


@pytest.fixture(scope="session")
def alpha_1of():
    return k_concurrency_alpha(3, 1)


@pytest.fixture(scope="session")
def alpha_2of():
    return k_concurrency_alpha(3, 2)


@pytest.fixture(scope="session")
def alpha_1res():
    return t_resilience_alpha(3, 1)


@pytest.fixture(scope="session")
def alpha_wf():
    return wait_free_alpha(3)


@pytest.fixture(scope="session")
def alpha_fig5b():
    return agreement_function_of(figure5b_adversary(), name="fig5b")


@pytest.fixture(scope="session")
def ra_1of(alpha_1of):
    return r_affine(alpha_1of)


@pytest.fixture(scope="session")
def ra_1res(alpha_1res):
    return r_affine(alpha_1res)


@pytest.fixture(scope="session")
def ra_fig5b(alpha_fig5b):
    return r_affine(alpha_fig5b)

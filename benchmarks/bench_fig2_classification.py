"""E2 — Figure 2: the adversary-class diagram, regenerated as a table.

The paper's diagram nests: t-resilient ⊂ superset-closed ⊂ fair and
k-OF / wait-free ⊂ symmetric ⊂ fair.  The benchmark classifies the
whole catalogue and checks every containment the figure draws.
"""

from repro.adversaries import (
    build_catalogue,
    csize,
    is_fair,
    setcon,
)
from repro.analysis import render_table


def classify(entries):
    rows = []
    for entry in entries:
        adversary = entry.adversary
        rows.append(
            (
                entry.name,
                adversary.is_superset_closed(),
                adversary.is_symmetric(),
                is_fair(adversary),
                setcon(adversary),
                csize(adversary),
            )
        )
    return rows


def bench_figure2_classification(benchmark):
    entries = build_catalogue(3)
    rows = benchmark(classify, entries)
    print()
    print(
        render_table(
            ["adversary", "ssc", "sym", "fair", "setcon", "csize"],
            rows,
        )
    )
    by_name = {row[0]: row for row in rows}

    # Figure 2 containments, instantiated:
    for name, ssc, sym, fair, _, _ in rows:
        if ssc or sym:
            assert fair, f"{name}: superset-closed/symmetric must be fair"

    # t-resilient adversaries are both superset-closed and symmetric.
    assert by_name["1-resilient"][1] and by_name["1-resilient"][2]
    # k-OF: symmetric but not superset-closed.
    assert by_name["1-obstruction-free"][2]
    assert not by_name["1-obstruction-free"][1]
    # The running example: superset-closed but not symmetric.
    assert by_name["figure-5b"][1] and not by_name["figure-5b"][2]
    # And something genuinely outside the fair class exists.
    assert any(not fair for (_, _, _, fair, _, _) in rows)


def bench_setcon_recursion(benchmark):
    """Time Definition 1's recursion on the hardest catalogue member."""
    from repro.adversaries import wait_free
    from repro.adversaries.setcon import _setcon_of_live_sets

    adversary = wait_free(4)

    def compute():
        _setcon_of_live_sets.cache_clear()
        return setcon(adversary)

    assert benchmark(compute) == 4


def bench_fairness_decision(benchmark):
    """Time the full Definition-2 sweep on the running example."""
    from repro.adversaries import figure5b_adversary

    adversary = figure5b_adversary()
    assert benchmark(is_fair, adversary)

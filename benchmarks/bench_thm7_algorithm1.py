"""E8 — Theorem 7: Algorithm 1 solves ``R_A`` in the α-model.

Times randomized α-model executions of the paper's Algorithm 1 (real
scheduler, real immediate-snapshot objects, crashes) and validates both
halves of the theorem on every run: safety (outputs form a simplex of
``R_A``) and liveness (all correct processes decide).
"""

from repro.analysis import render_table
from repro.runtime.algorithm1 import fuzz_algorithm1


def bench_algorithm1_one_resilient(benchmark, alpha_1res, ra_1res):
    outcomes = benchmark(
        fuzz_algorithm1, alpha_1res, ra_1res, 40, 7
    )
    assert len(outcomes) == 40
    assert all(outcome.in_affine_task for outcome in outcomes)


def bench_algorithm1_one_obstruction_free(benchmark, alpha_1of, ra_1of):
    outcomes = benchmark(fuzz_algorithm1, alpha_1of, ra_1of, 40, 11)
    assert all(outcome.in_affine_task for outcome in outcomes)


def bench_algorithm1_fig5b(benchmark, alpha_fig5b, ra_fig5b):
    outcomes = benchmark(fuzz_algorithm1, alpha_fig5b, ra_fig5b, 40, 13)
    assert all(outcome.in_affine_task for outcome in outcomes)


def bench_algorithm1_summary(benchmark, alpha_1res, ra_1res):
    """One timed pass plus a printed per-run summary table."""
    outcomes = benchmark(fuzz_algorithm1, alpha_1res, ra_1res, 15, 99)
    rows = [
        (
            index,
            "".join(map(str, sorted(outcome.plan.participants))),
            "".join(map(str, sorted(outcome.plan.crashed)))
            if hasattr(outcome.plan, "crashed")
            else "".join(map(str, sorted(outcome.plan.faulty))),
            outcome.result.steps_taken,
            len(outcome.simplex),
        )
        for index, outcome in enumerate(outcomes)
    ]
    print()
    print(
        render_table(
            ["run", "participants", "crashed", "steps", "deciders"], rows
        )
    )
    coverage = {len(outcome.simplex) for outcome in outcomes}
    assert coverage  # some decider-set sizes were exercised

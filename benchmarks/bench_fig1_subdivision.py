"""E1a / E1b — Figure 1: ``Chr s`` and ``R_{1-res}`` regenerated.

Paper data points (3 processes):

* Figure 1a — the standard chromatic subdivision: 12 vertices, 13
  facets (one per ordered set partition), each facet a 2-simplex;
* Figure 1b — ``R_{1-res}``: the sub-complex of ``Chr² s`` obtained by
  removing the corner-adjacent facets (every process must see at least
  one other process).
"""

from repro.analysis import complex_census, render_mapping
from repro.core.rtres import r_t_resilient
from repro.topology import fubini_number, standard_simplex
from repro.topology.geometry import subdivision_volume_check
from repro.topology.subdivision import iterated_subdivision


def bench_chr_construction(benchmark):
    """Time building Chr s from scratch (no cache)."""
    base = standard_simplex(3)
    result = benchmark(iterated_subdivision, base, 1)
    census = complex_census(result)
    print()
    print(render_mapping("Figure 1a — Chr s census:", census))
    assert census["vertices"] == 12
    assert census["facets"] == fubini_number(3) == 13
    assert census["f_vector"] == [12, 24, 13]


def bench_chr2_construction(benchmark):
    """Time building Chr² s from scratch."""
    base = standard_simplex(3)
    result = benchmark(iterated_subdivision, base, 2)
    census = complex_census(result)
    print()
    print(render_mapping("Chr² s census:", census))
    assert census["facets"] == fubini_number(3) ** 2 == 169
    assert census["vertices"] == 99


def bench_chr_geometric_validation(benchmark):
    """Time the geometric subdivision check (volumes add up)."""
    base = standard_simplex(3)
    chr1 = iterated_subdivision(base, 1)
    assert benchmark(subdivision_volume_check, chr1, 3)


def bench_r1res_construction(benchmark):
    """Time building R_{1-res} (Figure 1b) from Chr² s."""
    result = benchmark(r_t_resilient, 3, 1)
    census = complex_census(result.complex)
    print()
    print(render_mapping("Figure 1b — R_1-res census:", census))
    assert census["facets"] == 142
    assert census["pure"]


def bench_rtres_family(benchmark):
    """The whole t-resilience family at n=3."""

    def family():
        return [
            len(r_t_resilient(3, t).complex.facets) for t in range(3)
        ]

    counts = benchmark(family)
    print()
    print(f"R_t-res facet counts for t=0,1,2: {counts}")
    assert counts == [97, 142, 169]

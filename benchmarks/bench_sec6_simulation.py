"""E13 — Section 6: simulating the α-model inside ``R*_A``.

Two halves, both timed and validated:

* the α-adaptive set-consensus protocol over iterated affine tasks
  (validity, α-agreement, termination);
* the sequence-numbered snapshot simulation (snapshot comparability,
  self-inclusion, termination), including under a constant adversarial
  facet schedule.
"""

from repro.analysis import render_table
from repro.protocols.adaptive_set_consensus import fuzz_adaptive_set_consensus
from repro.runtime.simulation import fuzz_snapshot_simulation


def bench_set_consensus_in_ra_star(benchmark, alpha_fig5b, ra_fig5b):
    outcomes = benchmark(
        fuzz_adaptive_set_consensus, alpha_fig5b, ra_fig5b, 40, 3
    )
    bound = alpha_fig5b(frozenset(range(3)))
    distribution = {}
    for outcome in outcomes:
        d = outcome.distinct_decisions()
        distribution[d] = distribution.get(d, 0) + 1
        assert d <= bound
    print()
    print(
        render_table(
            ["distinct decisions", "runs"], sorted(distribution.items())
        )
    )


def bench_consensus_in_r1of_star(benchmark, alpha_1of, ra_1of):
    outcomes = benchmark(
        fuzz_adaptive_set_consensus, alpha_1of, ra_1of, 40, 5
    )
    assert all(o.distinct_decisions() == 1 for o in outcomes)


def bench_snapshot_simulation(benchmark, ra_1res):
    results = benchmark(fuzz_snapshot_simulation, ra_1res, 20, 9)
    total_ops = sum(len(ops) for run in results for ops in run.values())
    print(f"\nsnapshot simulation: {total_ops} ops across 20 runs, all linearizable evidence passed")
    assert total_ops > 0


def bench_snapshot_simulation_iteration_cost(benchmark, ra_1res):
    """Iterations needed for a fixed 3-op-per-process workload."""
    from repro.runtime.simulation import SnapshotSimulation

    scripts = {
        pid: [("write", f"w{pid}"), ("snapshot",), ("write", f"x{pid}")]
        for pid in range(3)
    }

    def run_once():
        sim = SnapshotSimulation(ra_1res, scripts, seed=31)
        sim.run()
        return sim.iterations

    iterations = benchmark(run_once)
    print(f"\niterations to drain the workload: {iterations}")
    assert iterations < 100

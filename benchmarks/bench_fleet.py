"""Fleet economics: throughput vs shard count, and the edge-verify tax.

Three sections, all recorded into ``BENCH_fleet.json``:

1. **Fixed-service-time scaling** — the same mix of distinct ``sleep``
   queries (known per-query service time) is driven through a router
   over 1, 2 and 4 shard *subprocesses*.  Each shard's engine dispatch
   thread is serial, so aggregate throughput on this mix measures the
   serving architecture — routing, pipelined links, per-shard dispatch
   concurrency — independent of host CPU count.  The 2-shard fleet must
   beat the single shard by >1.4x (asserted here, gated as an intra-run
   ratio).
2. **CPU-bound scaling** — the same comparison on real ``classify``
   work.  Recorded as ``null`` when the host has fewer than 2 CPUs
   (the gate treats a null ratio as "skipped (environment)").
3. **Edge verification** — warm ``certify`` latency through a
   cert-verifying replica versus straight from the shard (the checker
   tax), plus the adversarial parity bit: a tampering shard proxy must
   produce exactly one rejected certificate.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

from repro.analysis import render_mapping
from repro.fleet import (
    BackgroundComponent,
    EdgeReplica,
    FleetRouter,
    TamperingShardProxy,
    classify_mix,
    fixed_service_time_mix,
    launch_shards,
    run_load,
    stop_shards,
)
from repro.service import ServiceClient, ServiceError
from repro.tasks.set_consensus import set_consensus_task

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fleet.json"

SHARD_COUNTS = (1, 2, 4)
SLEEP_QUERIES = 48
SLEEP_S = 0.02
CLIENTS = 12
CLASSIFY_QUERIES = 12
EDGE_REPEATS = 10


def _routed_load(shard_count: int, queries, *, salt_note: str):
    """One arm: ``shard_count`` shard subprocesses behind a router."""
    shards = launch_shards(shard_count, memcache_size=256, no_cache=True)
    try:
        router = FleetRouter(
            [shard.address for shard in shards], forward_timeout=120.0
        )
        with BackgroundComponent(router) as front:
            report = run_load(
                front.host, front.port, queries, clients=CLIENTS
            )
    finally:
        stop_shards(shards)
    assert report.errors == 0, (salt_note, report.error_codes)
    assert report.ok == len(queries)
    return report


def _sleep_arm(shard_count: int):
    queries = fixed_service_time_mix(
        SLEEP_QUERIES, SLEEP_S, salt=f"bench-{shard_count}"
    )
    return _routed_load(shard_count, queries, salt_note=f"sleep x{shard_count}")


def _classify_arm(shard_count: int):
    queries = classify_mix(CLASSIFY_QUERIES, n=4, seed=2024)
    return _routed_load(
        shard_count, queries, salt_note=f"classify x{shard_count}"
    )


class _ProxyLoop:
    """A TamperingShardProxy on its own event-loop thread."""

    def __init__(self, upstream):
        self.proxy = TamperingShardProxy(upstream)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )

    def __enter__(self):
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.proxy.start(), self._loop
        ).result(30)
        return self.proxy

    def __exit__(self, *exc):
        asyncio.run_coroutine_threadsafe(
            self.proxy.close(), self._loop
        ).result(30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)


def _mean_warm_latency(host, port, fire, repeats=EDGE_REPEATS) -> float:
    with ServiceClient(host, port, timeout=120.0) as client:
        fire(client)  # warm the shard's memcache slice
        samples = []
        for _ in range(repeats):
            started = time.perf_counter()
            fire(client)
            samples.append(time.perf_counter() - started)
    return sum(samples) / len(samples)


def bench_fleet(ra_1res):
    cpu_count = os.cpu_count() or 1
    task = set_consensus_task(3, 2)

    # -- 1: fixed-service-time scaling ---------------------------------
    sleep_reports = {count: _sleep_arm(count) for count in SHARD_COUNTS}
    rps = {count: report.rps for count, report in sleep_reports.items()}
    speedup_2x = rps[2] / rps[1]
    speedup_4x = rps[4] / rps[1]
    # The acceptance bar: two shard processes genuinely out-serve one.
    assert speedup_2x > 1.4, f"2-shard speedup {speedup_2x:.2f} <= 1.4"

    # -- 2: CPU-bound scaling (needs real cores) -----------------------
    if cpu_count >= 2:
        classify_reports = {count: _classify_arm(count) for count in (1, 2)}
        cpu_bound = {
            "queries": CLASSIFY_QUERIES,
            "rps_1_shard": round(classify_reports[1].rps, 2),
            "rps_2_shards": round(classify_reports[2].rps, 2),
            "speedup_2x": round(
                classify_reports[2].rps / classify_reports[1].rps, 3
            ),
        }
    else:
        # Scaling CPU-bound work needs >1 core; recording a ratio from
        # a single-CPU box would be noise presented as signal.
        cpu_bound = {
            "queries": CLASSIFY_QUERIES,
            "rps_1_shard": None,
            "rps_2_shards": None,
            "speedup_2x": None,
        }

    # -- 3: the edge-verify tax and the adversarial parity bit ---------
    shards = launch_shards(1, memcache_size=256, no_cache=True)
    try:
        shard = shards[0]

        def fire(client):
            client.certify(ra_1res, task)

        direct_s = _mean_warm_latency(shard.host, shard.port, fire)
        replica = EdgeReplica([shard.address], forward_timeout=120.0)
        with BackgroundComponent(replica) as edge:
            replica_s = _mean_warm_latency(edge.host, edge.port, fire)
        verify_overhead_ratio = replica_s / direct_s

        doctored_rejected = 0
        with _ProxyLoop(shard.address) as proxy:
            tampered_replica = EdgeReplica([(proxy.host, proxy.port)])
            with BackgroundComponent(tampered_replica) as edge:
                with ServiceClient(edge.host, edge.port, retries=0) as client:
                    try:
                        client.certify(ra_1res, task)
                    except ServiceError as exc:
                        if exc.code == "verification_failed":
                            doctored_rejected = proxy.tampered
    finally:
        stop_shards(shards)

    report = {
        "cpu_count": cpu_count,
        "workload": {
            "shard_counts": list(SHARD_COUNTS),
            "fixed_service_queries": SLEEP_QUERIES,
            "service_time_s": SLEEP_S,
            "clients": CLIENTS,
        },
        "errors": sum(r.errors for r in sleep_reports.values()),
        "fixed_service_time": {
            **{
                f"rps_{count}_shards": round(rps[count], 2)
                for count in SHARD_COUNTS
            },
            **{
                f"p99_ms_{count}_shards": round(
                    sleep_reports[count].p99_ms, 3
                )
                for count in SHARD_COUNTS
            },
            "speedup_2x": round(speedup_2x, 3),
            "speedup_4x": round(speedup_4x, 3),
        },
        "cpu_bound": cpu_bound,
        "edge": {
            "direct_certify_warm_s": round(direct_s, 6),
            "replica_certify_warm_s": round(replica_s, 6),
            "verify_overhead_ratio": round(verify_overhead_ratio, 3),
            "doctored_certs_rejected": doctored_rejected,
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("fleet under load:", report))
    print(f"wrote {OUTPUT}")

    assert report["errors"] == 0
    assert doctored_rejected == 1

"""E4 — Figure 4: the 2-contention complex, regenerated.

Checks the figure's two example runs (4a: a fully reversed pair of
rounds makes every pair contend; 4b: mixed orders leave exactly one
contending pair) and the census of ``Cont2`` in ``Chr² s`` (4c).
"""

from repro.analysis import render_mapping
from repro.core.contention import (
    are_contending,
    contention_complex,
    is_contention_simplex,
)
from repro.runtime.iis import run_iis


def bench_contention_complex(benchmark):
    cont = benchmark(contention_complex, 3)
    print()
    print(
        render_mapping(
            "Figure 4c — Cont2 census (vertices, edges, triangles):",
            {"f_vector": cont.f_vector()},
        )
    )
    assert cont.f_vector() == [99, 78, 6]


def bench_figure4a_reversed_orders(benchmark):
    def build():
        return run_iis(
            3,
            [
                (frozenset({1}), frozenset({0}), frozenset({2})),
                (frozenset({2}), frozenset({0}), frozenset({1})),
            ],
        )

    execution = benchmark(build)
    vertices = [execution.vertex_of(pid) for pid in range(3)]
    assert is_contention_simplex(vertices)
    pairs = sum(
        1
        for i in range(3)
        for j in range(i + 1, 3)
        if are_contending(vertices[i], vertices[j])
    )
    print(f"\nFigure 4a: contending pairs = {pairs} (all three)")
    assert pairs == 3


def bench_figure4b_mixed_orders(benchmark):
    def build():
        return run_iis(
            3,
            [
                (frozenset({0}), frozenset({1}), frozenset({2})),
                (frozenset({1}), frozenset({0, 2})),
            ],
        )

    execution = benchmark(build)
    vertices = {pid: execution.vertex_of(pid) for pid in range(3)}
    contending = sorted(
        (a, b)
        for a in range(3)
        for b in range(a + 1, 3)
        if are_contending(vertices[a], vertices[b])
    )
    print(f"\nFigure 4b: contending pairs = {contending} (only p1, p2)")
    assert contending == [(0, 1)]


def bench_contention_triangles_are_reversed_runs(benchmark):
    """Each of the 6 contention triangles comes from strictly reversed
    round orders — enumerate and verify."""
    from repro.topology.subdivision import chr_complex
    from repro.core.views import view1, view2

    chr2 = chr_complex(3, 2)

    def count_triangles():
        return [
            facet
            for facet in chr2.facets
            if is_contention_simplex(facet)
        ]

    triangles = benchmark(count_triangles)
    assert len(triangles) == 6
    for facet in triangles:
        ordered = sorted(facet, key=lambda v: len(view1(v)))
        sizes1 = [len(view1(v)) for v in ordered]
        sizes2 = [len(view2(v)) for v in ordered]
        assert sizes1 == [1, 2, 3]
        assert sizes2 == [3, 2, 1]

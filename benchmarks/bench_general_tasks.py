"""E17 — general tasks over genuine input complexes.

The full generality of FACT: ``φ : R_A^ℓ(I) → O`` with ``I`` a real
input complex.  Measured separations at ℓ = 1 (each cell decided by
exhaustive carried-map search over ``L(I)``):

* binary consensus is unsolvable from the wait-free ``Chr s`` — the
  FLP impossibility, machine-decided;
* binary consensus **is** solvable from ``R_A(1-OF)``;
* 1-resilience solves binary 2-set consensus but not binary consensus.
"""

from repro.adversaries import k_concurrency_alpha
from repro.analysis import render_table
from repro.core import full_affine_task, r_affine, r_t_resilient
from repro.tasks.general_task import (
    binary_consensus_task,
    binary_k_set_consensus_task,
    general_task_solvable,
)


def bench_flp_refutation(benchmark):
    """FLP at depth 1: exhaustive refutation over Chr(I)."""
    task = binary_consensus_task(3)
    affine = full_affine_task(3, 1)
    result = benchmark.pedantic(
        general_task_solvable, args=(affine, task), rounds=2, iterations=1
    )
    assert not result


def bench_consensus_from_r1of(benchmark):
    task = binary_consensus_task(3)
    affine = r_affine(k_concurrency_alpha(3, 1))
    assert benchmark(general_task_solvable, affine, task)


def bench_separation_table(benchmark):
    consensus = binary_consensus_task(3)
    two_set = binary_k_set_consensus_task(3, 2)
    models = [
        ("wait-free Chr s", full_affine_task(3, 1)),
        ("R_A(1-OF)", r_affine(k_concurrency_alpha(3, 1))),
        ("R_1-res", r_t_resilient(3, 1)),
    ]

    def decide_all():
        return [
            (
                name,
                general_task_solvable(affine, consensus),
                general_task_solvable(affine, two_set),
            )
            for name, affine in models
        ]

    rows = benchmark.pedantic(decide_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["model (one shot)", "binary consensus", "binary 2-set consensus"],
            [
                (name, "yes" if c else "no", "yes" if k2 else "no")
                for name, c, k2 in rows
            ],
        )
    )
    # Binary 2-set consensus is solvable everywhere (only two values
    # exist, so the identity map works); binary consensus separates.
    assert rows == [
        ("wait-free Chr s", False, True),
        ("R_A(1-OF)", True, True),
        ("R_1-res", False, True),
    ]


def bench_domain_construction(benchmark):
    """Cost of building L(I) — 8 glued copies of R_{1-res}."""
    from repro.tasks.general_task import (
        binary_input_complex,
        subdivide_input_complex,
    )

    affine = r_t_resilient(3, 1)
    inputs = binary_input_complex(3)
    domain = benchmark(subdivide_input_complex, affine, inputs)
    assert len(domain.facets) == 8 * 142

"""E7 / E9 — Figure 7 + Definition-9 disambiguation.

Regenerates the affine tasks of Figure 7 (and Figure 1b) and runs the
guard-variant experiment: under the union reading of Definition 9,
``R_A`` coincides with ``R_{t-res}`` for every ``t`` and with
``R_{k-OF}`` at ``k = 1, n``; at ``k = 2`` it is a strict sub-complex —
the documented finding of this reproduction.
"""

from repro.adversaries import k_concurrency_alpha
from repro.analysis import compare_affine_tasks, render_table
from repro.core.ra import r_affine
from repro.core.rkof import r_k_obstruction_free
from repro.core.rtres import r_t_resilient
from repro.core.theorems import guard_variant_report


def bench_figure7a_ra_1of(benchmark, alpha_1of):
    task = benchmark(r_affine, alpha_1of)
    print(f"\nFigure 7a — R_A(1-OF): {len(task.complex.facets)} facets")
    assert len(task.complex.facets) == 73
    assert task.complex == r_k_obstruction_free(3, 1).complex


def bench_figure7b_ra_fig5b(benchmark, alpha_fig5b):
    task = benchmark(r_affine, alpha_fig5b)
    print(f"\nFigure 7b — R_A(fig5b): {len(task.complex.facets)} facets")
    assert len(task.complex.facets) == 145


def bench_affine_task_table(benchmark, alpha_1of, alpha_1res, alpha_fig5b):
    def build_all():
        return [
            r_affine(alpha_1of),
            r_affine(alpha_1res),
            r_affine(alpha_fig5b),
            r_k_obstruction_free(3, 1),
            r_t_resilient(3, 1),
        ]

    tasks = benchmark(build_all)
    rows = [
        (row["name"], row["facets"], row["vertices"])
        for row in compare_affine_tasks(tasks)
    ]
    print()
    print(render_table(["task", "facets", "vertices"], rows))
    by_name = dict((name, facets) for name, facets, _ in rows)
    assert by_name["R[1-res]"] == by_name["R_1-res"] == 142


def bench_guard_variant_report(benchmark):
    """E9: the Definition-9 reading experiment."""
    report = benchmark(guard_variant_report, 3)
    print()
    for variant, entries in report.items():
        print(f"  variant={variant}: {entries}")
    union = report["union"]
    assert union["k-OF k=1"] and union["k-OF k=3"]
    assert union["t-res t=0"] and union["t-res t=1"] and union["t-res t=2"]
    # The documented finding: strictness at k=2.
    assert not union["k-OF k=2"]
    assert sum(report["union"].values()) > sum(
        report["intersection"].values()
    )


def bench_ra_k2_strict_inclusion(benchmark):
    def build():
        ra = r_affine(k_concurrency_alpha(3, 2), "union")
        rk = r_k_obstruction_free(3, 2)
        return ra, rk

    ra, rk = benchmark(build)
    assert ra.complex.complex.is_sub_complex_of(rk.complex.complex)
    print(
        f"\nE9 finding: R_A(2-OF) has {len(ra.complex.facets)} facets, "
        f"Definition 6's R_2-OF has {len(rk.complex.facets)} "
        "(strict sub-complex; task-equivalent — see bench_fact)"
    )
    assert (len(ra.complex.facets), len(rk.complex.facets)) == (142, 163)

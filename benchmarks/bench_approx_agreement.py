"""E14 — the iteration dimension of FACT: ε-agreement crossover.

FACT quantifies over the iteration count ``ℓ``.  k-set consensus is
decided at ``ℓ = 1``; ε-approximate agreement needs ``ℓ`` growing with
the precision.  Measured crossover (2 processes, ε = 3^-m, outputs on
the 3^-m grid): solvable from ``Chr^ℓ s`` **iff ℓ >= m** — one
chromatic subdivision contracts the edge by exactly 1/3 per round.
"""

from repro.analysis import render_table
from repro.tasks.approximate_agreement import (
    approximate_agreement_task,
    realization_map,
    solvable_at_depth,
)
from repro.tasks.solvability import verify_carried_map
from repro.core import full_affine_task


def bench_crossover_table(benchmark):
    def table():
        return {
            (m, l): solvable_at_depth(m, l)
            for m in (1, 2, 3)
            for l in (1, 2, 3)
        }

    results = benchmark(table)
    rows = [
        [f"eps=3^-{m}"] + ["yes" if results[(m, l)] else "no" for l in (1, 2, 3)]
        for m in (1, 2, 3)
    ]
    print()
    print(render_table(["task \\ depth", "l=1", "l=2", "l=3"], rows))
    assert all(results[(m, l)] == (l >= m) for m in (1, 2, 3) for l in (1, 2, 3))


def bench_negative_search_depth2(benchmark):
    """The exhaustive refutation at (m=3, l=2)."""
    assert not benchmark(solvable_at_depth, 3, 2)


def bench_constructive_map_verification(benchmark):
    """Verifying the diagonal's canonical realization map at depth 3."""
    task = approximate_agreement_task(3)
    affine = full_affine_task(2, 3)
    mapping = realization_map(3)
    assert benchmark(verify_carried_map, affine, task, mapping)


def bench_task_construction(benchmark):
    task = benchmark(approximate_agreement_task, 2)
    task.validate()

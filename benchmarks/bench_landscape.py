"""E15 — the complete 3-process adversary landscape.

Exhaustive classification of all 127 adversaries over three processes:
fairness coverage, the Figure-2 region populations, the agreement-power
histogram, and the collapse of the fair class into 37 distinct
agreement functions — each inducing a *distinct* affine task (the map
α ↦ R_A is injective on this landscape).
"""

from repro.analysis import render_mapping, render_table
from repro.analysis.landscape import classify_all, fair_task_classes, summarize


def bench_classify_all(benchmark):
    entries = benchmark(classify_all, 3)
    assert len(entries) == 127


def bench_landscape_summary(benchmark):
    entries = classify_all(3)
    summary = benchmark(summarize, entries)
    print()
    print(
        render_mapping(
            "n=3 landscape:",
            {
                "adversaries": summary.total,
                "fair": summary.fair,
                "superset-closed": summary.superset_closed,
                "symmetric": summary.symmetric,
                "setcon histogram": summary.power_histogram,
                "distinct alphas (fair)": summary.distinct_alphas_fair,
                "distinct affine tasks": summary.distinct_affine_tasks,
            },
        )
    )
    assert summary.total == 127
    assert summary.fair == 43
    assert summary.superset_closed == 18
    assert summary.symmetric == 7
    assert summary.power_histogram == {1: 63, 2: 63, 3: 1}
    assert summary.distinct_alphas_fair == 37
    # The injectivity observation:
    assert summary.distinct_affine_tasks == 37


def bench_classify_all_engine_warm(benchmark, tmp_path):
    """The same census through the engine against a warm artifact cache."""
    from repro.engine import ArtifactCache, Engine

    cache_dir = tmp_path / "landscape-cache"
    legacy = classify_all(3)
    Engine(cache=ArtifactCache(cache_dir)).classify_many(
        [entry.adversary for entry in legacy]
    )

    def classify_warm():
        return classify_all(3, engine=Engine(cache=ArtifactCache(cache_dir)))

    entries = benchmark(classify_warm)
    assert entries == legacy


def bench_model_order(benchmark):
    """The inclusion partial order on the 37 fair model classes."""
    from repro.analysis.model_order import summarize_order

    summary = benchmark.pedantic(
        summarize_order, args=(3,), rounds=1, iterations=1
    )
    print()
    print(
        render_mapping(
            "fair-model order (n=3):",
            {
                "classes": summary.classes,
                "comparable pairs": summary.comparable_pairs,
                "Hasse edges": summary.hasse_edges,
                "longest chain": summary.longest_chain_length,
                "max antichain": summary.maximal_antichain,
                "facet range": (summary.minimum_facets, summary.maximum_facets),
                "inclusion respects setcon": summary.power_respected,
            },
        )
    )
    assert summary.classes == 37
    assert summary.power_respected


def bench_fair_task_classes(benchmark):
    classes = benchmark(fair_task_classes, 3)
    sizes = sorted(
        (len(members) for members in classes.values()), reverse=True
    )
    facet_counts = sorted(
        len(task.complex.facets) for task in classes
    )
    print()
    print(
        render_table(
            ["statistic", "value"],
            [
                ["R_A equivalence classes", len(classes)],
                ["class sizes (desc)", sizes[:10]],
                ["smallest R_A (facets)", facet_counts[0]],
                ["largest R_A (facets)", facet_counts[-1]],
            ],
        )
    )
    assert sum(len(m) for m in classes.values()) == 43
    assert facet_counts[-1] == 169  # the wait-free class

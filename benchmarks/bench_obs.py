"""Tracing economics: what ``repro.obs`` costs, off and on.

The committed performance numbers (``BENCH_solver.json`` and friends)
all run with tracing **off**, so the first claim to audit is that the
disabled path is genuinely free: ``obs.span()`` with no active tracer
is one module-global read returning a shared singleton.  This benchmark
measures that per-call cost directly, then the enabled-path span cost,
then the end-to-end overhead of tracing a real workload — the E11 FACT
grid through the engine, warm, which is the densest span producer in
the stack (one ``engine.compute`` + ``solver.search`` pair per query).

Everything lands in ``BENCH_obs.json`` as measured; the CI gate bounds
``traced_overhead_ratio`` (enabled-mode cost may not creep) and pins
``spans_per_batch`` (the span taxonomy per engine batch is
deterministic — a new or lost span is a structural change, not noise).
The simulator's hot loop gets the same treatment: its disabled-path
calls must return the shared noop singleton, and one seeded exploration
has a pinned ``sim.schedule`` / ``sim.round`` / ``sim.guard_wait``
census.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.analysis import render_mapping
from repro.core import full_affine_task, r_affine
from repro.engine import Engine
from repro.solver import SolveRequest
from repro.tasks.set_consensus import set_consensus_task

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_obs.json"

ROUNDS = 5
DISABLED_CALLS = 200_000
ENABLED_CALLS = 20_000


def _grid():
    affines = [
        full_affine_task(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(k_concurrency_alpha(3, 2)),
        r_affine(t_resilience_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary())),
    ]
    return [
        SolveRequest(affine=affine, task=set_consensus_task(3, k))
        for affine in affines
        for k in range(1, 4)
    ]


def _best_of(rounds, stage):
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = stage()
        best = min(best, time.perf_counter() - started)
    return value, best


def bench_obs():
    obs.disable()  # the committed-numbers state; measure it honestly

    # -- per-call cost of span() with tracing off ----------------------
    def run_disabled():
        for _ in range(DISABLED_CALLS):
            with obs.span("bench.noop"):
                pass

    _, disabled_s = _best_of(ROUNDS, run_disabled)
    disabled_ns = 1e9 * disabled_s / DISABLED_CALLS

    # -- per-call cost with a tracer active ----------------------------
    tracer = obs.enable()

    def run_enabled():
        for _ in range(ENABLED_CALLS):
            with obs.span("bench.span"):
                pass
        tracer.drain()

    _, enabled_s = _best_of(ROUNDS, run_enabled)
    enabled_ns = 1e9 * enabled_s / ENABLED_CALLS
    obs.disable()

    # -- end-to-end: the warm E11 grid, untraced vs traced -------------
    grid = _grid()
    engine = Engine()  # jobs=1, NullCache: every run really searches
    baseline = engine.solve_many(grid)  # primes the per-pair setup caches

    def run_untraced():
        return engine.solve_many(grid)

    untraced_results, untraced_s = _best_of(ROUNDS, run_untraced)
    assert untraced_results == baseline

    def run_traced():
        tracer = obs.enable()
        try:
            results = engine.solve_many(grid)
        finally:
            obs.disable()
        return results, tracer.drain()

    (traced_results, spans), traced_s = _best_of(ROUNDS, run_traced)
    assert traced_results == baseline  # tracing never changes answers
    overhead_ratio = traced_s / max(untraced_s, 1e-9)

    # The warm sequential batch has a deterministic span taxonomy:
    # engine.batch + engine.cache.lookup, then one engine.compute +
    # solver.search pair per query (setups are primed, so no
    # solver.setup spans).  Pinned by the CI gate.
    expected_spans = 2 + 2 * len(grid)
    by_name = {}
    for span_obj in spans:
        by_name[span_obj.name] = by_name.get(span_obj.name, 0) + 1
    assert len(spans) == expected_spans, by_name
    assert by_name == {
        "engine.batch": 1,
        "engine.cache.lookup": 1,
        "engine.compute": len(grid),
        "solver.search": len(grid),
    }

    # -- the sim hot loop: disabled fast path + pinned taxonomy --------
    # The simulator wraps every schedule in ``sim.schedule`` and marks
    # round starts / guard resumes inside the event loop, so its hot
    # loop is the densest span call site outside the solver.  With the
    # tracer off those calls must hit the shared-noop fast path; with it
    # on, one exploration has a deterministic span census.
    from repro.sim import BoscoWeakAgreement, byzantine_plans, explore

    assert obs.span("sim.schedule") is obs.NOOP_SPAN
    assert obs.span("sim.round") is obs.NOOP_SPAN
    assert obs.span("sim.guard_wait") is obs.NOOP_SPAN

    protocol = BoscoWeakAgreement(4, 1)
    plans = byzantine_plans(4, 1, seed=0)

    def run_sim():
        return explore(protocol, plans, 2, seed=0)

    sim_report, sim_untraced_s = _best_of(ROUNDS, run_sim)

    def run_sim_traced():
        tracer = obs.enable()
        try:
            report = explore(protocol, plans, 2, seed=0)
        finally:
            obs.disable()
        return report, tracer.drain()

    (sim_traced_report, sim_spans), sim_traced_s = _best_of(
        ROUNDS, run_sim_traced
    )
    assert sim_traced_report == sim_report  # tracing never changes runs
    sim_overhead_ratio = sim_traced_s / max(sim_untraced_s, 1e-9)

    sim_by_name: dict = {}
    for span_obj in sim_spans:
        sim_by_name[span_obj.name] = sim_by_name.get(span_obj.name, 0) + 1
    # Exactly one sim.schedule per executed schedule; round-start and
    # guard-resume markers are deterministic for the seeded exploration.
    assert set(sim_by_name) == {"sim.schedule", "sim.round", "sim.guard_wait"}
    assert sim_by_name["sim.schedule"] == sim_report["schedules"]

    # -- export throughput ---------------------------------------------
    handle, export_path = tempfile.mkstemp(suffix=".jsonl")
    os.close(handle)
    try:
        def run_export():
            return obs.export_jsonl(export_path, spans)

        exported, export_s = _best_of(ROUNDS, run_export)
        assert exported == expected_spans
    finally:
        os.unlink(export_path)
    export_rate = expected_spans / max(export_s, 1e-9)

    report = {
        "workload": {
            "queries": len(grid),
            "rounds": ROUNDS,
            "disabled_calls": DISABLED_CALLS,
            "enabled_calls": ENABLED_CALLS,
        },
        "disabled_span_ns": round(disabled_ns, 1),
        "enabled_span_ns": round(enabled_ns, 1),
        "spans_per_batch": expected_spans,
        "t_warm_untraced_s": round(untraced_s, 6),
        "t_warm_traced_s": round(traced_s, 6),
        "traced_overhead_ratio": round(overhead_ratio, 3),
        "sim": {
            "schedules": sim_report["schedules"],
            "span_sim_schedule": sim_by_name["sim.schedule"],
            "span_sim_round": sim_by_name["sim.round"],
            "span_sim_guard_wait": sim_by_name["sim.guard_wait"],
            "traced_overhead_ratio": round(sim_overhead_ratio, 3),
        },
        "export_spans_per_s": round(export_rate, 0),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("tracing economics:", report))
    print(f"wrote {OUTPUT}")

    # The honesty claims: disabled spans must stay in nanoseconds (the
    # committed numbers depend on it), and enabled-mode tracing of the
    # densest real workload must stay a bounded tax, not a rewrite of
    # the performance story.
    assert disabled_ns < 1000.0
    assert overhead_ratio < 3.0

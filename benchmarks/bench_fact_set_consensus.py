"""E11 — Theorems 15/16 (FACT): set-consensus power of affine tasks.

For every fair model in the zoo, the minimal ``k`` such that one shot
of its affine task solves k-set consensus — decided by exhaustive
simplicial-map search — equals ``setcon(A)``.  The wait-free row uses
depth 1 (Sperner parity supplies the depth-2 evidence, see
``bench_compactness``).  This is the headline "who wins, by how much"
table of the reproduction.
"""

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    setcon,
    t_resilience_alpha,
    t_resilient,
    wait_free,
)
from repro.analysis import render_table
from repro.core import full_affine_task, r_affine, r_k_obstruction_free, r_t_resilient
from repro.tasks import minimal_set_consensus


def bench_fact_table(benchmark):
    cases = [
        ("wait-free (Chr s)", full_affine_task(3, 1), setcon(wait_free(3))),
        ("R_A(1-OF)", r_affine(k_concurrency_alpha(3, 1)), 1),
        ("R_A(2-OF)", r_affine(k_concurrency_alpha(3, 2)), 2),
        ("R_A(1-res)", r_affine(t_resilience_alpha(3, 1)), 2),
        (
            "R_A(fig5b)",
            r_affine(agreement_function_of(figure5b_adversary())),
            setcon(figure5b_adversary()),
        ),
        ("R_1-OF (Def 6)", r_k_obstruction_free(3, 1), 1),
        ("R_2-OF (Def 6)", r_k_obstruction_free(3, 2), 2),
        ("R_1-res (SHG16)", r_t_resilient(3, 1), setcon(t_resilient(3, 1))),
    ]

    def decide_all():
        return [
            (name, minimal_set_consensus(task), expected)
            for name, task, expected in cases
        ]

    rows = benchmark(decide_all)
    print()
    print(
        render_table(
            ["affine task", "min k (measured)", "setcon (paper)"], rows
        )
    )
    for name, measured, expected in rows:
        assert measured == expected, name


def bench_consensus_positive_search(benchmark, ra_1of):
    """Time the positive search: consensus map out of R_{1-OF}."""
    from repro.tasks import solves_set_consensus

    assert benchmark(solves_set_consensus, ra_1of, 1)


def bench_consensus_negative_search(benchmark, ra_1res):
    """Time the exhaustive refutation: no consensus map out of
    R_A(1-res)."""
    from repro.tasks import solves_set_consensus

    assert not benchmark(solves_set_consensus, ra_1res, 1)


def bench_ktas_table(benchmark):
    """E21: k-test-and-set thresholds match setcon across the zoo —
    the paper's concluding pointer ([25]) instantiated at ℓ=1."""
    from repro.tasks.test_and_set import k_test_and_set_task
    from repro.tasks.solvability import MapSearch

    models = [
        ("wait-free Chr s", full_affine_task(3, 1), 3),
        ("R_A(1-OF)", r_affine(k_concurrency_alpha(3, 1)), 1),
        ("R_A(2-OF)", r_affine(k_concurrency_alpha(3, 2)), 2),
        ("R_A(1-res)", r_affine(t_resilience_alpha(3, 1)), 2),
    ]

    def decide_all():
        rows = []
        for name, affine, power in models:
            solvable = [
                MapSearch(affine, k_test_and_set_task(3, k)).search()
                is not None
                for k in (1, 2, 3)
            ]
            rows.append((name, power, solvable))
        return rows

    rows = benchmark(decide_all)
    print()
    print(
        render_table(
            ["model", "setcon", "1-TAS", "2-TAS", "3-TAS"],
            [
                (name, power, *["yes" if s else "no" for s in solvable])
                for name, power, solvable in rows
            ],
        )
    )
    for name, power, solvable in rows:
        for index, answer in enumerate(solvable, start=1):
            assert answer == (index >= power), (name, index)


def bench_equivalence_of_ra_and_def6_at_k2(benchmark):
    """The task-computability face of the E9 finding: Definition 9's
    strictly smaller complex has the same set-consensus power as
    Definition 6's R_{2-OF}."""

    def both():
        ra = r_affine(k_concurrency_alpha(3, 2))
        rk = r_k_obstruction_free(3, 2)
        return minimal_set_consensus(ra), minimal_set_consensus(rk)

    measured = benchmark(both)
    print(f"\nmin-k: R_A(2-OF) = {measured[0]}, R_2-OF = {measured[1]}")
    assert measured == (2, 2)

"""E12 — Section 1 "Compact models" + the Sperner evidence.

* non-compactness witnesses for 1-resilience and 1-obstruction-freedom
  (every finite prefix complies; the limit run does not);
* affine models are prefix-closed, and solvable tasks are solvable in a
  bounded number of iterations (König);
* Sperner parity over ``Chr² s`` — the depth-2 evidence that wait-free
  2-set consensus is impossible for 3 processes.
"""

from repro.analysis.compactness import (
    affine_model_is_prefix_closed,
    bounded_round_solvability,
    obstruction_free_witness,
    solo_run_prefixes_comply_one_resilient,
)
from repro.analysis.sperner import fuzz_sperner
from repro.tasks import set_consensus_task


def bench_non_compactness_witnesses(benchmark):
    def both():
        return (
            solo_run_prefixes_comply_one_resilient(),
            obstruction_free_witness(),
        )

    one_res, one_of = benchmark(both)
    print(f"\n1-resilience witness: {one_res}")
    print(f"1-obstruction-freedom witness: {one_of}")
    assert not one_res["compact"]
    assert not one_of["compact"]


def bench_affine_prefix_closure(benchmark, ra_1res):
    assert benchmark(affine_model_is_prefix_closed, ra_1res)


def bench_bounded_round_solvability(benchmark, ra_1res):
    task = set_consensus_task(3, 2)
    depth = benchmark(bounded_round_solvability, ra_1res, task)
    print(f"\n2-set consensus solvable from R_A(1-res) at depth {depth}")
    assert depth == 1


def bench_sperner_parity_chr2(benchmark, chr2):
    """Every admissible labeling of Chr² s has an odd number of
    panchromatic facets — so no 2-set-consensus map exists at depth 2
    either (the wait-free negative)."""
    assert benchmark(fuzz_sperner, chr2, 60, 12)


def bench_sperner_parity_chr1(benchmark, chr1):
    assert benchmark(fuzz_sperner, chr1, 200, 4)

"""Service economics: a multi-client load mix against one server.

One in-process :class:`BackgroundServer` (engine ``jobs=1``, memcache
over a persistent artifact cache) serves concurrent
blocking clients over real TCP, in two phases:

1. **Coalesce burst** — every client fires the *same* cold ``solve``
   query simultaneously (barrier start): the batcher must answer all
   of them with exactly one engine computation.
2. **Mixed sweep** — each client walks a deterministic, per-client
   rotation of the full query mix (``chr`` subdivisions, zoo
   ``classify``, the E11 ``solve`` grid) for several cycles, so the
   first cycle fills the caches and later cycles measure the
   memcache-dominated steady state.

Client-side latencies are exact (per-request wall clock); the coalesce
and memcache rates come from the server's own ``stats`` op.  Results
land in ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.adversaries import build_catalogue
from repro.analysis import render_mapping
from repro.engine import ArtifactCache, Engine
from repro.service import BackgroundServer, MemCache, ServiceClient
from repro.tasks.set_consensus import set_consensus_task

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"

CLIENTS = 8
CYCLES = 3


def _quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def bench_service(tmp_path, ra_1of, ra_1res, ra_fig5b):
    engine = Engine(
        jobs=1,
        cache=MemCache(
            backing=ArtifactCache(tmp_path / "service-cache"),
            max_entries=512,
        ),
    )
    zoo = [entry.adversary for entry in build_catalogue(3)]
    affines = [ra_1of, ra_1res, ra_fig5b]
    mix = (
        [("chr", (n, depth)) for n, depth in ((2, 1), (3, 1), (3, 2))]
        + [("classify", (adversary,)) for adversary in zoo]
        + [
            ("solve", (affine, set_consensus_task(3, k), None, None))
            for affine in affines
            for k in (1, 2, 3)
        ]
    )

    latencies_lock = threading.Lock()
    latencies = []
    failures = []

    with BackgroundServer(engine, window=0.002, max_batch=64) as server:
        # -- phase 1: coalesce burst --------------------------------------
        burst_payload = ("solve", (ra_1res, set_consensus_task(3, 2), None, None))
        barrier = threading.Barrier(CLIENTS)

        def burst(index):
            try:
                with ServiceClient(port=server.port) as client:
                    barrier.wait(timeout=60)
                    client.query(*burst_payload)
            except Exception as exc:  # pragma: no cover - failure report
                failures.append(f"burst[{index}]: {exc!r}")

        threads = [
            threading.Thread(target=burst, args=(index,))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        with ServiceClient(port=server.port) as client:
            burst_stats = client.stats()
        burst_computations = burst_stats["engine"]["misses"]
        burst_coalesced = burst_stats["metrics"]["counters"].get(
            "coalesced_total", 0
        )

        # -- phase 2: mixed sweep -----------------------------------------
        def sweep(index):
            try:
                with ServiceClient(port=server.port) as client:
                    for cycle in range(CYCLES):
                        offset = index + cycle  # per-client rotation
                        for step in range(len(mix)):
                            kind, payload = mix[(offset + step) % len(mix)]
                            started = time.perf_counter()
                            client.query(kind, payload)
                            elapsed = time.perf_counter() - started
                            with latencies_lock:
                                latencies.append(elapsed)
            except Exception as exc:  # pragma: no cover - failure report
                failures.append(f"sweep[{index}]: {exc!r}")

        sweep_started = time.perf_counter()
        threads = [
            threading.Thread(target=sweep, args=(index,))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        sweep_wall = time.perf_counter() - sweep_started

        with ServiceClient(port=server.port) as client:
            stats = client.stats()

    assert not failures, failures
    assert len(latencies) == CLIENTS * CYCLES * len(mix)

    counters = stats["metrics"]["counters"]
    queries_total = counters.get("op_query_total", 0)
    coalesce_rate = counters.get("coalesced_total", 0) / queries_total
    latencies.sort()
    report = {
        "clients": CLIENTS,
        "cycles": CYCLES,
        "mix_size": len(mix),
        "requests_total": queries_total,
        "burst": {
            "clients": CLIENTS,
            "engine_computations": burst_computations,
            "coalesced": burst_coalesced,
        },
        "sweep_wall_s": round(sweep_wall, 4),
        "throughput_rps": round(len(latencies) / sweep_wall, 2),
        "latency_p50_s": round(_quantile(latencies, 0.50), 6),
        "latency_p99_s": round(_quantile(latencies, 0.99), 6),
        "latency_max_s": round(latencies[-1], 6),
        "coalesce_rate": round(coalesce_rate, 4),
        "memcache_hit_rate": stats["memcache"]["hit_rate"],
        "memcache_evictions": stats["memcache"]["evictions"],
        "engine_computations": stats["engine"]["misses"],
        "errors": sum(
            value
            for name, value in counters.items()
            if name.startswith("errors_")
        ),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("service under load:", report))
    print(f"wrote {OUTPUT}")

    # The acceptance bars: one computation per distinct artifact, the
    # burst coalesced onto a single search, and a hot memcache.
    assert report["errors"] == 0
    assert burst_computations == 1
    assert burst_coalesced >= 1
    assert report["memcache_hit_rate"] >= 0.5
    assert report["latency_p99_s"] <= 30.0

"""E10 — Section 6.2: µ_Q and Properties 9/10/12, exhaustively.

Times the exhaustive verification of the three properties of the
α-adaptive leader-election map over every facet of ``R_A`` and every
candidate coalition ``Q`` — the mechanized counterpart of the paper's
proofs.
"""

from repro.analysis import render_table
from repro.protocols.mu_map import MuMap, verify_mu_properties


def bench_mu_properties_1of(benchmark, alpha_1of, ra_1of):
    report = benchmark(verify_mu_properties, alpha_1of, ra_1of)
    assert report == {
        "validity": True,
        "agreement": True,
        "robustness": True,
    }


def bench_mu_properties_fig5b(benchmark, alpha_fig5b, ra_fig5b):
    report = benchmark(verify_mu_properties, alpha_fig5b, ra_fig5b)
    assert all(report.values())


def bench_mu_leader_distribution(benchmark, alpha_fig5b, ra_fig5b):
    """Distribution of per-facet distinct-leader counts (with Q = Pi):
    bounded by alpha(Pi) = 2 and the bound is achieved."""
    full = frozenset(range(3))

    def distribution():
        mu = MuMap(alpha_fig5b)
        counts = {}
        for facet in ra_fig5b.complex.facets:
            leaders = len({mu(v, full) for v in facet})
            counts[leaders] = counts.get(leaders, 0) + 1
        return counts

    counts = benchmark(distribution)
    print()
    print(
        render_table(
            ["distinct leaders per facet", "facets"],
            sorted(counts.items()),
        )
    )
    assert max(counts) == 2
    assert min(counts) >= 1


def bench_mu_single_evaluation(benchmark, alpha_1res, ra_1res):
    """Latency of one µ_Q evaluation (warm caches)."""
    mu = MuMap(alpha_1res)
    vertex = sorted(ra_1res.complex.vertices, key=repr)[0]
    full = frozenset(range(3))
    mu(vertex, full)  # warm
    leader = benchmark(mu, vertex, full)
    assert leader in range(3)

"""Scaling benchmarks: how the constructions grow with ``n``.

Not a paper figure — engineering telemetry for the library itself:
subdivision growth follows the Fubini numbers, ``setcon`` is
exponential, ``R_A`` construction is dominated by the ``Chr² s``
facet sweep.
"""

import pytest

from repro.adversaries import (
    agreement_function_of,
    setcon,
    t_resilience_alpha,
    t_resilient,
)
from repro.analysis import render_table
from repro.core.ra import r_affine
from repro.topology import fubini_number, standard_simplex
from repro.topology.subdivision import iterated_subdivision


@pytest.mark.parametrize("n", [2, 3, 4])
def bench_chr_growth(benchmark, n):
    base = standard_simplex(n)
    result = benchmark(iterated_subdivision, base, 1)
    assert len(result.facets) == fubini_number(n)


@pytest.mark.parametrize("n", [3, 4])
def bench_setcon_growth(benchmark, n):
    from repro.adversaries.setcon import _setcon_of_live_sets

    adversary = t_resilient(n, 1)

    def compute():
        _setcon_of_live_sets.cache_clear()
        return setcon(adversary)

    assert benchmark(compute) == 2


def bench_agreement_function_tabulation(benchmark):
    adversary = t_resilient(4, 2)
    alpha = benchmark(agreement_function_of, adversary)
    assert alpha(frozenset(range(4))) == 3


def bench_ra_construction_n3(benchmark, alpha_1res):
    task = benchmark(r_affine, alpha_1res)
    assert len(task.complex.facets) == 142


@pytest.mark.slow
def bench_ra_construction_n4(benchmark):
    alpha = t_resilience_alpha(4, 1)
    task = benchmark.pedantic(r_affine, args=(alpha,), rounds=1, iterations=1)
    print(f"\nR_A(1-res, n=4): {len(task.complex.facets)} facets of Chr² s (5625 total)")
    assert task.complex.is_pure(3)


def bench_summary_table(benchmark):
    def collect():
        rows = []
        for n in (2, 3, 4):
            rows.append(
                (n, fubini_number(n), fubini_number(n) ** 2)
            )
        return rows

    rows = benchmark(collect)
    print()
    print(
        render_table(
            ["n", "facets of Chr s", "facets of Chr² s"], rows
        )
    )

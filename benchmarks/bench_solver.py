"""Solve-kernel economics: the bitset kernel vs the legacy oracle.

The workload is the E11 FACT grid (5 affine tasks x k in 1..3), solved
three ways:

* legacy — one :class:`MapSearch` per query (the differential oracle);
* bitset cold — :class:`BitsetKernel` with the per-``(affine, task)``
  setup cache stripped first, so interning and table compilation are
  paid inside the measurement;
* bitset warm — the same queries with the setup cache primed, which is
  the steady state of every real consumer (the engine's split-retry
  escalations, the service's repeated-query traffic, resume).

Honest accounting: the kernel's win is *not* a faster tree walk alone —
it is that setup (vertex ordering, domain construction, constraint
compilation) happens once per pair instead of once per query, plus the
bit-probe consistency test.  Cold, the kernel roughly breaks even
(setup dominates both engines); warm, the search itself is the only
cost and the speedup is large.  Both numbers land in
``BENCH_solver.json``, as measured, along with the opt-in fc kernel's
figures.  Every query is parity-checked against the oracle (maps *and*
node counts) before any number is recorded.

Two further sections ride on the same grid:

* **symmetry, cold** — the orbit-quotiented kernel, measured only on
  the *qualifying* subset: symmetric adversary AND search-dominant
  tree (>= ``_SEARCH_DOMINANT_NODES`` legacy nodes).  The quotient
  pays for automorphism verification up front, so setup-dominant
  instances can only lose cold — honest accounting restricts the
  claim to where the quotient can recoup that cost, extends the grid
  with n=4 wait-free cases (the base grid is nearly all
  setup-dominant at n=3), and records ``null`` when nothing
  qualifies.  Verdict parity is asserted per query; found maps must
  pass the independent verifier (node counts are the quotient's own).
* **portfolio** — every grid query raced across
  ``{bitset, fc, symmetry}`` on a 3-worker pool (first verdict wins,
  losers cancelled).  Which kernel wins is a property of the host, so
  the histogram is recorded as informational; the race count and
  verdicts are deterministic and asserted.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.analysis import render_mapping
from repro.core import full_affine_task, r_affine
from repro.engine import Engine
from repro.solver import (
    PORTFOLIO_KERNELS,
    BitsetKernel,
    ForwardCheckingKernel,
    SolveRequest,
    SymmetryKernel,
)
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch, verify_carried_map

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_solver.json"

ROUNDS = 3

#: Legacy-node floor for "search-dominant": below this the wall time is
#: setup, which the symmetry kernel can only lose cold (it verifies the
#: automorphism group up front).
_SEARCH_DOMINANT_NODES = 1000


def _grid():
    affines = [
        full_affine_task(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(k_concurrency_alpha(3, 2)),
        r_affine(t_resilience_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary())),
    ]
    return [
        (affine, set_consensus_task(3, k))
        for affine in affines
        for k in range(1, 4)
    ]


#: Adversary symmetry per `_grid` affine row (fig5b is the asymmetric
#: one); the symmetry quotient can only prune under a symmetric
#: adversary, so only those rows are candidates.
_GRID_SYMMETRIC = (True, True, True, True, False)


def _symmetric_extra():
    """n=4 wait-free cases: symmetric with genuinely search-dominant
    trees (k=3 is deliberately absent — its legacy tree is enormous)."""
    affine = full_affine_task(4, 1)
    return [(affine, set_consensus_task(4, k)) for k in (1, 2)]


def _strip_setup(task) -> None:
    """Drop the per-(affine, task) interning cache: the cold state."""
    if hasattr(task, "_solver_setup"):
        del task._solver_setup


def _best_of(rounds, stage):
    """Best-of-N wall time (and the last value, for parity checks)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = stage()
        best = min(best, time.perf_counter() - started)
    return value, best


def bench_solver():
    grid = _grid()

    # -- legacy oracle: setup + search paid on every query -------------
    legacy_maps, legacy_nodes, legacy_times = [], [], []
    for affine, task in grid:
        def run_legacy():
            search = MapSearch(affine, task)
            mapping = search.search()
            return mapping, search.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_legacy)
        legacy_maps.append(mapping)
        legacy_nodes.append(nodes)
        legacy_times.append(elapsed)

    # -- bitset, cold: interning paid inside the measurement -----------
    cold_times = []
    for affine, task in grid:
        def run_cold():
            _strip_setup(task)
            kernel = BitsetKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_cold)
        cold_times.append(elapsed)
        index = len(cold_times) - 1
        assert mapping == legacy_maps[index], grid[index][0].name
        assert nodes == legacy_nodes[index], grid[index][0].name

    # -- bitset, warm: the steady state of every real consumer ---------
    warm_times = []
    for index, (affine, task) in enumerate(grid):
        BitsetKernel(affine, task).search()  # prime the setup cache

        def run_warm():
            kernel = BitsetKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_warm)
        warm_times.append(elapsed)
        assert mapping == legacy_maps[index], affine.name
        assert nodes == legacy_nodes[index], affine.name

    # -- fc, warm: verdict/map parity, its own node counts -------------
    fc_times, fc_nodes = [], []
    for index, (affine, task) in enumerate(grid):
        def run_fc():
            kernel = ForwardCheckingKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_fc)
        fc_times.append(elapsed)
        fc_nodes.append(nodes)
        assert mapping == legacy_maps[index], affine.name
        assert nodes <= legacy_nodes[index], affine.name

    # -- symmetry, cold: the qualifying symmetric subset ----------------
    candidates = [
        (grid[i][0], grid[i][1], legacy_nodes[i], legacy_times[i], legacy_maps[i])
        for i in range(len(grid))
        if _GRID_SYMMETRIC[i // 3]
    ]
    for affine, task in _symmetric_extra():
        def run_extra_legacy():
            search = MapSearch(affine, task)
            return search.search(), search.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_extra_legacy)
        candidates.append((affine, task, nodes, elapsed, mapping))

    sym_speedups = []
    for affine, task, nodes, legacy_time, legacy_map in candidates:
        if nodes < _SEARCH_DOMINANT_NODES:
            continue

        def run_sym():
            _strip_setup(task)
            kernel = SymmetryKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, _sym_nodes), elapsed = _best_of(ROUNDS, run_sym)
        # Soundness, not tree parity: the quotiented tree has its own
        # node counts, but verdicts must match and a found map must
        # independently verify as a concrete carried map.
        assert (mapping is None) == (legacy_map is None), affine.name
        if mapping is not None:
            assert verify_carried_map(affine, task, mapping), affine.name
        sym_speedups.append(legacy_time / max(elapsed, 1e-9))

    median_speedup_cold_symmetry = (
        round(statistics.median(sym_speedups), 2) if sym_speedups else None
    )

    # -- portfolio: race the kernels on a 3-worker pool -----------------
    win_histogram = {kernel: 0 for kernel in PORTFOLIO_KERNELS}
    portfolio_started = time.perf_counter()
    with Engine(jobs=3) as engine:
        raced = engine.portfolio_many(
            [
                SolveRequest(affine=affine, task=task)
                for affine, task in grid
            ]
        )
        races = engine.worker_stats()["races"]
    t_portfolio = time.perf_counter() - portfolio_started
    for (mapping, _nodes, kernel), legacy_map in zip(raced, legacy_maps):
        assert (mapping is None) == (legacy_map is None)
        win_histogram[kernel] += 1

    def _speedups(times):
        return [legacy / max(t, 1e-9) for legacy, t in zip(legacy_times, times)]

    report = {
        "workload": {
            "queries": len(grid),
            "rounds": ROUNDS,
            "solvable": sum(1 for m in legacy_maps if m is not None),
            "search_nodes_total": sum(legacy_nodes),
        },
        "t_legacy_s": round(sum(legacy_times), 4),
        "t_bitset_cold_s": round(sum(cold_times), 4),
        "t_bitset_warm_s": round(sum(warm_times), 4),
        "t_fc_warm_s": round(sum(fc_times), 4),
        # Per-query medians, legacy/kernel: >1 means the kernel is faster.
        "median_speedup_cold": round(
            statistics.median(_speedups(cold_times)), 2
        ),
        "median_speedup_warm": round(
            statistics.median(_speedups(warm_times)), 2
        ),
        "median_speedup_fc_warm": round(
            statistics.median(_speedups(fc_times)), 2
        ),
        "fc_nodes_vs_legacy": round(
            sum(fc_nodes) / max(sum(legacy_nodes), 1), 3
        ),
        "symmetry": {
            "candidates": len(candidates),
            "qualifying_queries": len(sym_speedups),
        },
        # Null when no candidate is search-dominant on this host.
        "median_speedup_cold_symmetry": median_speedup_cold_symmetry,
        "t_portfolio_s": round(t_portfolio, 4),
        "portfolio": {
            "races": races,
            # Which kernel wins a race is a property of the host —
            # informational, gated only for existence.
            "win_histogram": win_histogram,
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("solver kernel economics:", report))
    print(f"wrote {OUTPUT}")

    # Parity is asserted above, per query.  The perf claims: warm — the
    # state every consumer actually runs in — must clear the 3x bar on
    # the E11 grid; cold must at least not be a regression disaster.
    assert report["median_speedup_warm"] > 3.0
    assert report["median_speedup_cold"] > 0.5
    # The symmetry claim is scoped to the search-dominant symmetric
    # subset; when nothing qualifies the metric is an honest null.
    if sym_speedups:
        assert report["median_speedup_cold_symmetry"] > 1.3
    assert report["portfolio"]["races"] == len(grid)

"""Solve-kernel economics: the bitset kernel vs the legacy oracle.

The workload is the E11 FACT grid (5 affine tasks x k in 1..3), solved
three ways:

* legacy — one :class:`MapSearch` per query (the differential oracle);
* bitset cold — :class:`BitsetKernel` with the per-``(affine, task)``
  setup cache stripped first, so interning and table compilation are
  paid inside the measurement;
* bitset warm — the same queries with the setup cache primed, which is
  the steady state of every real consumer (the engine's split-retry
  escalations, the service's repeated-query traffic, resume).

Honest accounting: the kernel's win is *not* a faster tree walk alone —
it is that setup (vertex ordering, domain construction, constraint
compilation) happens once per pair instead of once per query, plus the
bit-probe consistency test.  Cold, the kernel roughly breaks even
(setup dominates both engines); warm, the search itself is the only
cost and the speedup is large.  Both numbers land in
``BENCH_solver.json``, as measured, along with the opt-in fc kernel's
figures.  Every query is parity-checked against the oracle (maps *and*
node counts) before any number is recorded.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.analysis import render_mapping
from repro.core import full_affine_task, r_affine
from repro.solver import BitsetKernel, ForwardCheckingKernel
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_solver.json"

ROUNDS = 3


def _grid():
    affines = [
        full_affine_task(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(k_concurrency_alpha(3, 2)),
        r_affine(t_resilience_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary())),
    ]
    return [
        (affine, set_consensus_task(3, k))
        for affine in affines
        for k in range(1, 4)
    ]


def _strip_setup(task) -> None:
    """Drop the per-(affine, task) interning cache: the cold state."""
    if hasattr(task, "_solver_setup"):
        del task._solver_setup


def _best_of(rounds, stage):
    """Best-of-N wall time (and the last value, for parity checks)."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = stage()
        best = min(best, time.perf_counter() - started)
    return value, best


def bench_solver():
    grid = _grid()

    # -- legacy oracle: setup + search paid on every query -------------
    legacy_maps, legacy_nodes, legacy_times = [], [], []
    for affine, task in grid:
        def run_legacy():
            search = MapSearch(affine, task)
            mapping = search.search()
            return mapping, search.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_legacy)
        legacy_maps.append(mapping)
        legacy_nodes.append(nodes)
        legacy_times.append(elapsed)

    # -- bitset, cold: interning paid inside the measurement -----------
    cold_times = []
    for affine, task in grid:
        def run_cold():
            _strip_setup(task)
            kernel = BitsetKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_cold)
        cold_times.append(elapsed)
        index = len(cold_times) - 1
        assert mapping == legacy_maps[index], grid[index][0].name
        assert nodes == legacy_nodes[index], grid[index][0].name

    # -- bitset, warm: the steady state of every real consumer ---------
    warm_times = []
    for index, (affine, task) in enumerate(grid):
        BitsetKernel(affine, task).search()  # prime the setup cache

        def run_warm():
            kernel = BitsetKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_warm)
        warm_times.append(elapsed)
        assert mapping == legacy_maps[index], affine.name
        assert nodes == legacy_nodes[index], affine.name

    # -- fc, warm: verdict/map parity, its own node counts -------------
    fc_times, fc_nodes = [], []
    for index, (affine, task) in enumerate(grid):
        def run_fc():
            kernel = ForwardCheckingKernel(affine, task)
            return kernel.search(), kernel.nodes_explored

        (mapping, nodes), elapsed = _best_of(ROUNDS, run_fc)
        fc_times.append(elapsed)
        fc_nodes.append(nodes)
        assert mapping == legacy_maps[index], affine.name
        assert nodes <= legacy_nodes[index], affine.name

    def _speedups(times):
        return [legacy / max(t, 1e-9) for legacy, t in zip(legacy_times, times)]

    report = {
        "workload": {
            "queries": len(grid),
            "rounds": ROUNDS,
            "solvable": sum(1 for m in legacy_maps if m is not None),
            "search_nodes_total": sum(legacy_nodes),
        },
        "t_legacy_s": round(sum(legacy_times), 4),
        "t_bitset_cold_s": round(sum(cold_times), 4),
        "t_bitset_warm_s": round(sum(warm_times), 4),
        "t_fc_warm_s": round(sum(fc_times), 4),
        # Per-query medians, legacy/kernel: >1 means the kernel is faster.
        "median_speedup_cold": round(
            statistics.median(_speedups(cold_times)), 2
        ),
        "median_speedup_warm": round(
            statistics.median(_speedups(warm_times)), 2
        ),
        "median_speedup_fc_warm": round(
            statistics.median(_speedups(fc_times)), 2
        ),
        "fc_nodes_vs_legacy": round(
            sum(fc_nodes) / max(sum(legacy_nodes), 1), 3
        ),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("solver kernel economics:", report))
    print(f"wrote {OUTPUT}")

    # Parity is asserted above, per query.  The perf claims: warm — the
    # state every consumer actually runs in — must clear the 3x bar on
    # the E11 grid; cold must at least not be a regression disaster.
    assert report["median_speedup_warm"] > 3.0
    assert report["median_speedup_cold"] > 0.5

"""E16 — Theorem 2 operationalized: α-adaptive set consensus objects.

Builds the Definition-4 object inside the α-model by composing the
paper's own tools (Algorithm 1 → vertex of ``R_A`` → µ leader), and
fuzzes validity, α-agreement and termination under random α-model
plans.  Also times the wait-free commit–adopt substrate.
"""

from repro.analysis import render_table
from repro.protocols.alpha_set_consensus import fuzz_alpha_set_consensus
from repro.protocols.commit_adopt import fuzz_commit_adopt


def bench_alpha_object_1res(benchmark, alpha_1res):
    outcomes = benchmark(fuzz_alpha_set_consensus, alpha_1res, 30, 3)
    assert len(outcomes) == 30


def bench_alpha_object_fig5b(benchmark, alpha_fig5b):
    outcomes = benchmark(fuzz_alpha_set_consensus, alpha_fig5b, 30, 5)
    rows = {}
    for outcome in outcomes:
        key = (
            "".join(map(str, sorted(outcome.plan.participants))),
            outcome.distinct_decisions(),
        )
        rows[key] = rows.get(key, 0) + 1
    print()
    print(
        render_table(
            ["participants", "distinct decisions", "runs"],
            [[p, d, c] for (p, d), c in sorted(rows.items())],
        )
    )


def bench_alpha_object_consensus_under_1of(benchmark, alpha_1of):
    outcomes = benchmark(fuzz_alpha_set_consensus, alpha_1of, 30, 7)
    assert all(o.distinct_decisions() == 1 for o in outcomes)


def bench_commit_adopt(benchmark):
    results = benchmark(fuzz_commit_adopt, 3, 60, 1)
    commits = sum(
        1
        for outputs in results
        for grade, _ in outputs.values()
        if grade == "commit"
    )
    print(f"\ncommit-adopt: {commits} commits across 60 fuzzed runs")
    assert commits > 0

"""Certificate economics: extraction overhead and check-vs-search cost.

The workload is the E11 FACT grid (5 affine tasks x k in 1..3), run
three ways:

* plain solve — one :class:`MapSearch` per query (the baseline);
* certified solve — the same search plus certificate extraction;
* independent check — the stdlib checker validating each certificate.

The claims worth recording honestly: extraction is a near-zero-cost
by-product of the search (the certificate is a read-out of state the
search already computed), checking a *positive* certificate is far
cheaper than finding the map (verify one assignment vs search the
space), while checking a *negative* certificate replays the exhaustive
backtrack and therefore costs the same order as the refuting search —
there is no free lunch for refutations.  Numbers land in
``BENCH_certify.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.analysis import render_mapping
from repro.certify import certified_search, check
from repro.core import full_affine_task, r_affine
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_certify.json"


def _grid():
    affines = [
        full_affine_task(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(k_concurrency_alpha(3, 2)),
        r_affine(t_resilience_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary())),
    ]
    return [
        (affine, set_consensus_task(3, k))
        for affine in affines
        for k in range(1, 4)
    ]


def _timed(stage):
    started = time.perf_counter()
    value = stage()
    return value, time.perf_counter() - started


def bench_certify():
    grid = _grid()

    plain = []
    t_plain = 0.0
    for affine, task in grid:
        mapping, elapsed = _timed(
            lambda: MapSearch(affine, task).search()
        )
        plain.append(mapping)
        t_plain += elapsed

    certs = []
    t_certified = 0.0
    search_time = []
    for affine, task in grid:
        (mapping, cert), elapsed = _timed(
            lambda: certified_search(affine, task)
        )
        certs.append((mapping, cert))
        search_time.append(elapsed)
        t_certified += elapsed
    # The certified verdicts agree with the plain searches.
    assert [m for m, _ in certs] == plain

    t_check = {"solvable": 0.0, "unsolvable": 0.0}
    t_search = {"solvable": 0.0, "unsolvable": 0.0}
    counts = {"solvable": 0, "unsolvable": 0}
    for (mapping, cert), elapsed in zip(certs, search_time):
        report, t = _timed(lambda: check(cert))
        assert report.valid, (report.reason, report.detail)
        kind = cert["kind"]
        t_check[kind] += t
        t_search[kind] += elapsed
        counts[kind] += 1
    assert counts["solvable"] and counts["unsolvable"]

    report = {
        "workload": {
            "queries": len(grid),
            "solvable": counts["solvable"],
            "unsolvable": counts["unsolvable"],
        },
        "t_plain_solve_s": round(t_plain, 4),
        "t_certified_solve_s": round(t_certified, 4),
        # >1.0 means extraction cost something; near 1.0 is the claim.
        "certify_overhead_ratio": round(t_certified / t_plain, 3),
        "t_check_positive_s": round(t_check["solvable"], 4),
        "t_check_negative_s": round(t_check["unsolvable"], 4),
        # Positive: verify one assignment vs search the space.
        "check_positive_speedup_vs_search": round(
            t_search["solvable"] / max(t_check["solvable"], 1e-9), 1
        ),
        # Negative: the replay IS a search; expect ~1x, recorded as-is.
        "check_negative_ratio_vs_search": round(
            t_check["unsolvable"] / max(t_search["unsolvable"], 1e-9), 3
        ),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("certificate economics:", report))
    print(f"wrote {OUTPUT}")

    # Extraction must stay a by-product, not a re-search.  Both ratios
    # move with machine state (the solve denominator speeds up and
    # slows down independently of the fixed extraction/check cost), so
    # only structural blow-ups are asserted here — the run-over-run
    # trajectory is bounded against the committed baseline by
    # tools/bench_gate.py.
    assert report["certify_overhead_ratio"] < 5.0
    assert report["check_positive_speedup_vs_search"] > 0.2

"""Engine economics: cold vs warm cache, one vs many workers.

The workload is the expensive half of the reproduction — the complete
n=3 landscape classification (127 adversaries) plus the E11 FACT grid
(5 affine tasks x k in 1..3 solvability searches) — run four ways:

* legacy in-process calls (the baseline the engine must not distort),
* engine, cold persistent cache, ``jobs`` = 1 and 2,
* engine, warm persistent cache, ``jobs`` = 1 and 2.

In-process ``lru_cache`` state is cleared before every cold stage so a
"cold" measurement is genuinely cold.  The numbers land in
``BENCH_engine.json`` at the repo root; multi-worker scaling is
recorded honestly together with ``cpu_count`` — on a single-CPU box a
process pool cannot beat sequential execution for CPU-bound work, so
the multiworker stages are skipped outright and their metrics recorded
as ``null`` (the bench gate reads null-vs-number as "skipped on this
environment", not as a regression).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.adversaries.setcon import _setcon_of_live_sets
from repro.analysis import render_mapping
from repro.analysis.landscape import classify_all
from repro.core import full_affine_task, r_affine
from repro.engine import ArtifactCache, Engine
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"


def _solve_queries():
    affines = [
        full_affine_task(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(k_concurrency_alpha(3, 2)),
        r_affine(t_resilience_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary())),
    ]
    return [
        (affine, set_consensus_task(3, k), None)
        for affine in affines
        for k in range(1, 4)
    ]


def _go_cold():
    """Reset in-process memoization so cold stages measure real work."""
    _setcon_of_live_sets.cache_clear()


def _run_legacy(queries):
    entries = classify_all(3)
    solved = [
        (MapSearch(affine, task).search(), None)
        for affine, task, _ in queries
    ]
    return entries, solved


def _run_engine(engine, queries):
    entries = classify_all(3, engine=engine)
    solved = engine.solve_many(queries)
    return entries, solved


def _timed(stage):
    started = time.perf_counter()
    value = stage()
    return value, time.perf_counter() - started


def bench_engine_cache(tmp_path):
    queries = _solve_queries()

    _go_cold()
    (legacy_entries, legacy_solved), t_direct = _timed(
        lambda: _run_legacy(queries)
    )

    cpu_count = os.cpu_count() or 1
    worker_counts = (1, 2) if cpu_count >= 2 else (1,)
    timings = {}
    entries_by_stage = {}
    for jobs in worker_counts:
        cache_dir = tmp_path / f"cache-jobs{jobs}"
        _go_cold()
        (entries, solved), t_cold = _timed(
            lambda: _run_engine(
                Engine(jobs=jobs, cache=ArtifactCache(cache_dir)), queries
            )
        )
        _go_cold()
        (warm_entries, warm_solved), t_warm = _timed(
            lambda: _run_engine(
                Engine(jobs=jobs, cache=ArtifactCache(cache_dir)), queries
            )
        )
        assert entries == legacy_entries == warm_entries
        assert [m for m, _ in solved] == [m for m, _ in legacy_solved]
        assert warm_solved == solved
        timings[jobs] = (t_cold, t_warm)
        entries_by_stage[jobs] = len(ArtifactCache(cache_dir))

    t_cold_1, t_warm_1 = timings[1]
    t_cold_2, t_warm_2 = timings.get(2, (None, None))
    report = {
        "workload": {
            "adversaries_classified": len(legacy_entries),
            "solvability_queries": len(queries),
        },
        "cpu_count": cpu_count,
        "t_direct_s": round(t_direct, 4),
        "t_cold_jobs1_s": round(t_cold_1, 4),
        "t_warm_jobs1_s": round(t_warm_1, 4),
        "t_cold_jobs2_s": None if t_cold_2 is None else round(t_cold_2, 4),
        "t_warm_jobs2_s": None if t_warm_2 is None else round(t_warm_2, 4),
        "speedup_warm_cache": round(t_cold_1 / t_warm_1, 2),
        "speedup_multiworker_cold": (
            None if t_cold_2 is None else round(t_cold_1 / t_cold_2, 2)
        ),
        "artifacts_cached": entries_by_stage[1],
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("engine economics:", report))
    print(f"wrote {OUTPUT}")

    # A warm cache replays pure reads; anything under 5x means the
    # cache (or the codec) regressed badly.
    assert report["speedup_warm_cache"] >= 5.0
    # Honest scaling claim: only meaningful with real parallel hardware.
    if cpu_count >= 2:
        assert report["speedup_multiworker_cold"] > 1.0
    else:
        assert report["speedup_multiworker_cold"] is None

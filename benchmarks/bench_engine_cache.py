"""Engine economics: cold vs warm cache, cold vs warm *workers*.

The workload is the expensive half of the reproduction — the complete
n=3 landscape classification (127 adversaries) plus the E11 FACT grid
(5 affine tasks x k in 1..3 solvability searches) — run several ways:

* legacy in-process calls (the baseline the engine must not distort),
* engine, cold persistent cache, ``jobs`` = 1..min(4, cpu_count)
  (the saturation series),
* engine, warm persistent cache, same worker counts,
* two identical uncached solve batches through one persistent
  :class:`~repro.workers.WorkerPool` — the second batch reuses warm
  worker setups and interned wire components, which is the number the
  pool exists for (``speedup_multiworker_warm``).

In-process ``lru_cache`` state is cleared before every cold stage so a
"cold" measurement is genuinely cold.  The numbers land in
``BENCH_engine.json`` at the repo root; multi-worker scaling is
recorded honestly together with ``cpu_count`` — on a single-CPU box a
process pool cannot beat sequential execution for CPU-bound work, so
the multiworker stages are skipped outright and their metrics recorded
as ``null`` (the bench gate reads null-vs-number as "skipped on this
environment", not as a regression).  The ``saturation`` block always
carries the ``speedup_jobs2/3/4`` keys — unmeasured points are ``null``,
never absent, so the gate catches a silently narrowed series.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.adversaries.setcon import _setcon_of_live_sets
from repro.analysis import render_mapping
from repro.analysis.landscape import classify_all
from repro.core import full_affine_task, r_affine
from repro.engine import ArtifactCache, Engine, NullCache
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_engine.json"


def _solve_queries():
    affines = [
        full_affine_task(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(k_concurrency_alpha(3, 2)),
        r_affine(t_resilience_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary())),
    ]
    return [
        (affine, set_consensus_task(3, k), None)
        for affine in affines
        for k in range(1, 4)
    ]


def _go_cold():
    """Reset in-process memoization so cold stages measure real work."""
    _setcon_of_live_sets.cache_clear()


def _run_legacy(queries):
    entries = classify_all(3)
    solved = [
        (MapSearch(affine, task).search(), None)
        for affine, task, _ in queries
    ]
    return entries, solved


def _run_engine(engine, queries):
    entries = classify_all(3, engine=engine)
    solved = engine.solve_many(queries)
    return entries, solved


def _timed(stage):
    started = time.perf_counter()
    value = stage()
    return value, time.perf_counter() - started


def bench_engine_cache(tmp_path):
    queries = _solve_queries()

    _go_cold()
    (legacy_entries, legacy_solved), t_direct = _timed(
        lambda: _run_legacy(queries)
    )

    cpu_count = os.cpu_count() or 1
    worker_counts = tuple(range(1, min(4, cpu_count) + 1))
    timings = {}
    entries_by_stage = {}
    for jobs in worker_counts:
        cache_dir = tmp_path / f"cache-jobs{jobs}"
        _go_cold()
        engine = Engine(jobs=jobs, cache=ArtifactCache(cache_dir))
        (entries, solved), t_cold = _timed(
            lambda: _run_engine(engine, queries)
        )
        engine.close()
        _go_cold()
        warm_engine = Engine(jobs=jobs, cache=ArtifactCache(cache_dir))
        (warm_entries, warm_solved), t_warm = _timed(
            lambda: _run_engine(warm_engine, queries)
        )
        warm_engine.close()
        assert entries == legacy_entries == warm_entries
        assert [m for m, _ in solved] == [m for m, _ in legacy_solved]
        assert warm_solved == solved
        timings[jobs] = (t_cold, t_warm)
        entries_by_stage[jobs] = len(ArtifactCache(cache_dir))

    # Warm-worker economics: two identical uncached solve batches
    # through ONE persistent pool.  The first pays worker spawn, full
    # payload shipping and cold solver setups; the second ships digest
    # refs to workers whose setups are already derived — the speedup
    # the persistent pool was built for.
    t_pool_cold = t_pool_warm = None
    if cpu_count >= 2:
        _go_cold()
        pool_engine = Engine(jobs=2, cache=NullCache())
        pool_first, t_pool_cold = _timed(
            lambda: pool_engine.solve_many(queries)
        )
        pool_second, t_pool_warm = _timed(
            lambda: pool_engine.solve_many(queries)
        )
        pool_engine.close()
        assert [m for m, _ in pool_first] == [m for m, _ in legacy_solved]
        assert pool_second == pool_first

    t_cold_1, t_warm_1 = timings[1]
    t_cold_2, t_warm_2 = timings.get(2, (None, None))
    saturation = {
        f"speedup_jobs{jobs}": (
            round(t_cold_1 / timings[jobs][0], 2) if jobs in timings else None
        )
        for jobs in (2, 3, 4)
    }
    report = {
        "workload": {
            "adversaries_classified": len(legacy_entries),
            "solvability_queries": len(queries),
        },
        "cpu_count": cpu_count,
        "t_direct_s": round(t_direct, 4),
        "t_cold_jobs1_s": round(t_cold_1, 4),
        "t_warm_jobs1_s": round(t_warm_1, 4),
        "t_cold_jobs2_s": None if t_cold_2 is None else round(t_cold_2, 4),
        "t_warm_jobs2_s": None if t_warm_2 is None else round(t_warm_2, 4),
        "speedup_warm_cache": round(t_cold_1 / t_warm_1, 2),
        "speedup_multiworker_cold": (
            None if t_cold_2 is None else round(t_cold_1 / t_cold_2, 2)
        ),
        "speedup_multiworker_warm": (
            None
            if t_pool_warm is None
            else round(t_pool_cold / t_pool_warm, 2)
        ),
        "saturation": saturation,
        "artifacts_cached": entries_by_stage[1],
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(render_mapping("engine economics:", report))
    print(f"wrote {OUTPUT}")

    # A warm cache replays pure reads; anything under 5x means the
    # cache (or the codec) regressed badly.
    assert report["speedup_warm_cache"] >= 5.0
    # Honest scaling claims: only meaningful with real parallel hardware.
    if cpu_count >= 2:
        assert report["speedup_multiworker_cold"] > 1.0
        assert report["speedup_multiworker_warm"] > 1.0
        # The saturation series must not bend below sequential at the
        # first step (beyond jobs=2 it may flatten on small boxes).
        assert report["saturation"]["speedup_jobs2"] >= 1.0
    else:
        assert report["speedup_multiworker_cold"] is None
        assert report["speedup_multiworker_warm"] is None
        assert all(value is None for value in report["saturation"].values())
